"""Recovery policies and the accounting that proves they worked.

:class:`RetryPolicy` bounds how hard any layer tries before giving up
(attempts, exponential backoff, a per-request deadline — backoff is
charged to the traffic model's simulated clock, never slept).
:class:`CircuitBreaker` stops a flapping site from eating every
request's retry budget: after enough consecutive failures the breaker
opens and requests are shorted locally until a cooldown expires, then a
single half-open probe decides whether to close it again.

:class:`RobustnessStats` is the ledger.  Every injection site records
the fault it injected; every recovery site records what it did about
one.  The books must balance — ``total_faults == recovered +
unrecovered + absorbed`` — and the fault bench and tests assert that
identity, so a fault that is silently dropped (or double-counted) is a
test failure, not a mystery.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and a deadline.

    Backoff for attempt *n* (0-based, charged after the first failure)
    is ``backoff_base_ms * backoff_factor ** n`` of *simulated* time.
    A request abandons retrying when either ``max_attempts`` is reached
    or its accumulated simulated time would exceed ``deadline_ms``.
    """

    max_attempts: int = 4
    backoff_base_ms: float = 5.0
    backoff_factor: float = 2.0
    deadline_ms: float = 500.0

    def backoff_ms(self, attempt: int) -> float:
        """Simulated backoff charged before retry number ``attempt``."""
        return self.backoff_base_ms * (self.backoff_factor ** attempt)

    def gives_up(self, attempt: int, elapsed_ms: float) -> bool:
        """True when attempt number ``attempt`` must not be made."""
        return (attempt >= self.max_attempts
                or elapsed_ms >= self.deadline_ms)


class CircuitBreaker:
    """Per-site circuit breaker with half-open probing.

    CLOSED passes requests through; ``failure_threshold`` consecutive
    failures OPEN it.  While OPEN, requests are shorted (failed
    locally, no attempt, no retry budget spent) until ``cooldown_ticks``
    of the logical fault clock pass; the first request after cooldown
    is a HALF_OPEN probe — success closes the breaker, failure reopens
    it for another cooldown.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(self, failure_threshold: int = 4,
                 cooldown_ticks: int = 8) -> None:
        self.failure_threshold = failure_threshold
        self.cooldown_ticks = cooldown_ticks
        self.state = self.CLOSED
        self.consecutive_failures = 0
        self.opened_at = -1

    def allow(self, tick: int) -> tuple[bool, bool]:
        """May a request proceed at ``tick``?  Returns (allowed, probe).

        A shorted request (``allowed`` False) must not touch the wire;
        a probe (``allowed`` True, ``probe`` True) is the single
        half-open trial request.
        """
        if self.state == self.CLOSED:
            return True, False
        if self.state == self.OPEN:
            if tick - self.opened_at >= self.cooldown_ticks:
                self.state = self.HALF_OPEN
                return True, True
            return False, False
        # HALF_OPEN: one probe is already in flight this cooldown; any
        # other request is shorted until the probe resolves.
        return False, False

    def record_success(self) -> bool:
        """Note a successful request; True when this closed the breaker."""
        closed = self.state == self.HALF_OPEN
        self.state = self.CLOSED
        self.consecutive_failures = 0
        return closed

    def record_failure(self, tick: int) -> bool:
        """Note a failed request; True when this opened the breaker."""
        if self.state == self.HALF_OPEN:
            self.state = self.OPEN
            self.opened_at = tick
            return True
        self.consecutive_failures += 1
        if (self.state == self.CLOSED
                and self.consecutive_failures >= self.failure_threshold):
            self.state = self.OPEN
            self.opened_at = tick
            return True
        return False


@dataclass
class RobustnessStats:
    """The fault/recovery ledger threaded through every stats object.

    Injection sites call :meth:`record_fault`; recovery sites bump the
    outcome counters.  The accounting identity — every injected fault
    is eventually ``recovered`` (a retry, failover, stale answer, or
    degraded path served the request anyway), ``unrecovered`` (the
    failure reached the caller), or ``absorbed`` (the fault cost only
    simulated time, e.g. a latency spike) — is enforced by
    :meth:`balanced`, which the fault bench gates on.
    """

    #: Injected faults by kind (``site-outage``, ``block``, ...).
    faults_injected: dict[str, int] = field(default_factory=dict)
    #: Faults masked by a recovery action (request still succeeded).
    recovered: int = 0
    #: Faults whose failure reached the caller.
    unrecovered: int = 0
    #: Faults that only cost simulated time (latency spikes).
    absorbed: int = 0

    # Retry policy.
    retries: int = 0
    backoff_ms: float = 0.0
    deadline_exhausted: int = 0

    # Circuit breakers (shorts are local refusals, not injections).
    breaker_opens: int = 0
    breaker_shorts: int = 0
    breaker_probes: int = 0
    breaker_closes: int = 0

    # Federation failover.
    failovers: int = 0
    stale_summaries: int = 0
    partial_results: int = 0
    checksum_rejects: int = 0

    # Worker-pool crash recovery (reshard counts depend on pool timing
    # — a broken pool fails every unfinished future — so they are
    # excluded from determinism assertions; ``worker_crashes`` is not:
    # it is computed from the plan).
    worker_crashes: int = 0
    reshards: int = 0
    resharded_items: int = 0

    # Ingest quarantine.
    quarantined: int = 0
    retried_documents: int = 0

    # Serving degradation.
    degraded_replays: int = 0
    degraded_solves: int = 0
    degraded_edits: int = 0

    def record_fault(self, kind: str, count: int = 1) -> None:
        self.faults_injected[kind] = (
            self.faults_injected.get(kind, 0) + count)

    @property
    def total_faults(self) -> int:
        return sum(self.faults_injected.values())

    def balanced(self) -> bool:
        """Does every injected fault have a recorded outcome?"""
        return self.total_faults == (self.recovered + self.unrecovered
                                     + self.absorbed)

    def merge(self, other: "RobustnessStats") -> None:
        """Fold ``other`` into this ledger (worker-shard merges)."""
        for kind, count in other.faults_injected.items():
            self.record_fault(kind, count)
        for name in _MERGE_FIELDS:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> "RobustnessStats":
        clone = replace(self)
        clone.faults_injected = dict(self.faults_injected)
        return clone

    def delta_since(self, before: "RobustnessStats") -> "RobustnessStats":
        delta = RobustnessStats()
        for kind, count in self.faults_injected.items():
            dropped = count - before.faults_injected.get(kind, 0)
            if dropped:
                delta.faults_injected[kind] = dropped
        for name in _MERGE_FIELDS:
            setattr(delta, name,
                    getattr(self, name) - getattr(before, name))
        return delta

    @property
    def empty(self) -> bool:
        return self.total_faults == 0 and all(
            not getattr(self, name) for name in _MERGE_FIELDS)

    def describe(self) -> str:
        """Human-readable ledger: only the nonzero lines."""
        lines = []
        if self.faults_injected:
            injected = ", ".join(
                f"{kind}={count}" for kind, count
                in sorted(self.faults_injected.items()))
            lines.append(f"faults injected: {injected} "
                         f"(total {self.total_faults})")
            lines.append(f"outcomes: recovered={self.recovered} "
                         f"unrecovered={self.unrecovered} "
                         f"absorbed={self.absorbed} "
                         f"[{'balanced' if self.balanced() else 'UNBALANCED'}]")
        rows = (("retries", self.retries),
                ("backoff_ms", round(self.backoff_ms, 3)),
                ("deadline_exhausted", self.deadline_exhausted),
                ("breaker_opens", self.breaker_opens),
                ("breaker_shorts", self.breaker_shorts),
                ("breaker_probes", self.breaker_probes),
                ("breaker_closes", self.breaker_closes),
                ("failovers", self.failovers),
                ("stale_summaries", self.stale_summaries),
                ("partial_results", self.partial_results),
                ("checksum_rejects", self.checksum_rejects),
                ("worker_crashes", self.worker_crashes),
                ("reshards", self.reshards),
                ("resharded_items", self.resharded_items),
                ("quarantined", self.quarantined),
                ("retried_documents", self.retried_documents),
                ("degraded_replays", self.degraded_replays),
                ("degraded_solves", self.degraded_solves),
                ("degraded_edits", self.degraded_edits))
        active = [f"{name}={value}" for name, value in rows if value]
        if active:
            lines.append("recovery: " + " ".join(active))
        if not lines:
            return "robustness: no faults, no recoveries"
        return "\n".join(lines)


_MERGE_FIELDS = tuple(name for name in RobustnessStats.__dataclass_fields__
                      if name != "faults_injected")
