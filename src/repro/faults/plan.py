"""Deterministic fault injection: the seeded plan and its clock.

The ROADMAP's fleet posture (serve heavy traffic across a federation of
sites) is only credible if the fleet survives the failures a real
network implies: site outages, latency spikes, corrupt payloads, worker
crashes, transient fetch errors.  This module defines the *injection*
side of that story; :mod:`repro.faults.recovery` defines the policies
that absorb it.

Two properties drive the design:

* **Deterministic** — every fault decision is a pure function of
  ``(seed, kind, key, attempt)`` through a stable hash
  (:meth:`FaultPlan.fires`), never of wall-clock time, process
  identity or call order.  The same plan over the same workload
  injects the same faults in every run, on every worker layout, which
  is what lets the recovery tests pin faulted runs bit-identical to
  fault-free ones (and lets a test *predict* exactly which faults a
  plan will inject).  Time-dependent faults (site flapping) advance on
  a :class:`FaultClock` of logical request ticks, not wall time.
* **Zero-cost when disabled** — every injection site guards on
  ``plan is None`` first; the disabled path is the pre-fault code
  path, unchanged.

Plans parse from a compact spec string (the CLI ``--faults`` grammar,
:func:`parse_fault_plan`) or a JSON file, and the ``REPRO_FAULTS``
environment variable supplies a default plan to the top-level entry
points (ingest, serving, unpacking) for chaos-matrix CI runs —
:func:`resolve_faults`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, fields, replace
from pathlib import Path

from repro.core.descriptors import DataBlock
from repro.core.errors import CmifError

#: Environment variable holding a default fault-plan spec (CI chaos
#: matrix); consulted by :func:`resolve_faults` when no explicit plan
#: is given.
FAULTS_ENV = "REPRO_FAULTS"

#: Spec values that explicitly mean "no faults".
_OFF_SPECS = ("", "0", "off", "none")

#: Exit code of a worker process whose crash a plan injected.
WORKER_CRASH_EXIT = 23

#: The denominator of the stable-hash fraction (48 bits is plenty).
_HASH_SCALE = float(1 << 48)

#: The standard fault plan the availability bench
#: (``benchmarks/bench_faults.py``) gates under: one of the federation
#: sites flapping, 5% transient block-fetch failures, 2% corrupt
#: payloads, one worker-process crash (shard 0), and light transient
#: faults on the ingest and serving paths.
STANDARD_PLAN_SPEC = ("seed=1991,flap=site-1,period=16,blocks=0.05,"
                      "corrupt=0.02,summaries=0.05,ingest=0.05,"
                      "replay=0.05,solve=0.05,crash=0")


class FaultInjected(CmifError):
    """An injected (simulated) fault fired at an injection point.

    Carries the fault ``kind`` and the ``key`` it fired on so recovery
    layers can classify it as an infrastructure failure (it never
    indicates malformed input).
    """

    def __init__(self, kind: str, key: object, message: str) -> None:
        super().__init__(message)
        self.kind = kind
        self.key = key


class FaultClock:
    """A logical clock of request ticks (never wall time).

    Time-windowed faults (site flapping) and circuit-breaker cooldowns
    advance on this clock, one tick per remote attempt, so a run's
    fault timeline is a pure function of its operation sequence.
    """

    def __init__(self, start: int = 0) -> None:
        self.now = start

    def tick(self) -> int:
        """Return the current tick and advance."""
        now = self.now
        self.now += 1
        return now


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic description of what fails, where.

    Rates are probabilities in [0, 1] evaluated per ``(kind, key,
    attempt)`` through the stable hash — a fault that fires on attempt
    0 need not fire on the retry, which is what makes these faults
    *transient*.  All fields default to "off"; a default-constructed
    plan injects nothing.
    """

    seed: int = 0
    #: Sites that are always unreachable (hard outages).
    down_sites: tuple[str, ...] = ()
    #: Sites that flap: down whenever ``(tick // flap_period)`` is odd.
    flap_sites: tuple[str, ...] = ()
    flap_period: int = 8
    #: Latency spikes on otherwise successful remote operations.
    latency_rate: float = 0.0
    latency_spike_ms: float = 250.0
    #: Transient remote block-fetch failures (kind ``block``).
    block_failure_rate: float = 0.0
    #: Corrupt payload delivered by a remote block fetch
    #: (kind ``block-corrupt``; caught by checksum verification).
    block_corrupt_rate: float = 0.0
    #: Transient site-summary refresh failures (kind ``summary``).
    summary_failure_rate: float = 0.0
    #: Corrupt payload inside a transport package
    #: (kind ``package-corrupt``; caught by checksum verification).
    package_corrupt_rate: float = 0.0
    #: Transient per-document infrastructure faults during ingest
    #: (kind ``ingest``).
    ingest_failure_rate: float = 0.0
    #: Compiled-replay failures per (session, replay) (kind ``replay``).
    replay_failure_rate: float = 0.0
    #: Compiled-solver failures per admission (kind ``solve``).
    solve_failure_rate: float = 0.0
    #: Worker-pool shard indexes whose process dies at shard entry.
    crash_shards: tuple[int, ...] = ()

    # -- decisions ---------------------------------------------------------

    def fires(self, rate: float, kind: str, key: object,
              attempt: int = 0) -> bool:
        """Does a ``rate`` fault of ``kind`` fire on ``key``/``attempt``?

        A pure function: the stable 48-bit hash of ``(seed, kind, key,
        attempt)`` is compared against ``rate``.  Callers (and tests)
        can therefore predict every injection a plan will make.
        """
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        text = f"{self.seed}|{kind}|{key!r}|{attempt}"
        digest = hashlib.blake2b(text.encode("utf-8"),
                                 digest_size=6).digest()
        return int.from_bytes(digest, "big") / _HASH_SCALE < rate

    def site_down(self, site_name: str, tick: int) -> bool:
        """Is ``site_name`` unreachable at logical time ``tick``?"""
        if site_name in self.down_sites:
            return True
        if site_name in self.flap_sites:
            return (tick // max(self.flap_period, 1)) % 2 == 1
        return False

    def crashes_worker(self, shard_index: int) -> bool:
        """Does the worker process of ``shard_index`` die at entry?"""
        return shard_index in self.crash_shards

    @property
    def enabled(self) -> bool:
        """True when any fault axis is active."""
        return bool(self.down_sites or self.flap_sites
                    or self.crash_shards or self.latency_rate > 0
                    or self.block_failure_rate > 0
                    or self.block_corrupt_rate > 0
                    or self.summary_failure_rate > 0
                    or self.package_corrupt_rate > 0
                    or self.ingest_failure_rate > 0
                    or self.replay_failure_rate > 0
                    or self.solve_failure_rate > 0)

    def without_crashes(self) -> "FaultPlan":
        """This plan minus worker crashes (for in-parent retries)."""
        return replace(self, crash_shards=())

    def describe(self) -> str:
        """The compact spec-ish summary the CLI prints."""
        parts = [f"seed={self.seed}"]
        if self.down_sites:
            parts.append(f"down={'+'.join(self.down_sites)}")
        if self.flap_sites:
            parts.append(f"flap={'+'.join(self.flap_sites)}"
                         f"/{self.flap_period}")
        for label, rate in (("latency", self.latency_rate),
                            ("blocks", self.block_failure_rate),
                            ("corrupt", self.block_corrupt_rate),
                            ("summaries", self.summary_failure_rate),
                            ("packages", self.package_corrupt_rate),
                            ("ingest", self.ingest_failure_rate),
                            ("replay", self.replay_failure_rate),
                            ("solve", self.solve_failure_rate)):
            if rate > 0:
                parts.append(f"{label}={rate:g}")
        if self.crash_shards:
            parts.append(
                f"crash={'+'.join(map(str, self.crash_shards))}")
        return f"faults({', '.join(parts)})"


def corrupt_block(block: DataBlock) -> DataBlock:
    """A copy of ``block`` with its payload deterministically damaged.

    The damage is guaranteed to change the payload (and therefore the
    checksum): the first unit of the payload is bit-flipped, or a
    sentinel is appended when the payload is empty.  Used by the
    injection sites that simulate corruption-in-transport; the
    receiving side's checksum verification is what must catch it.
    """
    payload = block.payload
    corrupted = _corrupt_payload(payload)
    return DataBlock(block_id=block.block_id, medium=block.medium,
                     payload=corrupted)


def _corrupt_payload(payload: object) -> object:
    if isinstance(payload, str):
        if not payload:
            return "\x01"
        return chr(ord(payload[0]) ^ 1) + payload[1:]
    if isinstance(payload, (bytes, bytearray)):
        raw = bytearray(payload)
        if not raw:
            return b"\x01"
        raw[0] ^= 1
        return bytes(raw)
    if callable(payload):
        return _corrupt_payload(payload())
    # Array payloads: flip one bit of the raw bytes, same dtype/shape.
    try:
        import numpy as np
    except ImportError:                               # pragma: no cover
        return b"\x01"
    array = np.asarray(payload)
    raw = bytearray(array.tobytes())
    if not raw:                                       # pragma: no cover
        return array
    raw[0] ^= 1
    return np.frombuffer(bytes(raw),
                         dtype=array.dtype).reshape(array.shape).copy()


# -- spec parsing -------------------------------------------------------------

#: spec key -> (FaultPlan field, parser).
_SPEC_KEYS = {
    "seed": ("seed", int),
    "down": ("down_sites", lambda text: tuple(text.split("+"))),
    "flap": ("flap_sites", lambda text: tuple(text.split("+"))),
    "period": ("flap_period", int),
    "flap-period": ("flap_period", int),
    "latency": ("latency_rate", float),
    "latency-ms": ("latency_spike_ms", float),
    "blocks": ("block_failure_rate", float),
    "corrupt": ("block_corrupt_rate", float),
    "summaries": ("summary_failure_rate", float),
    "packages": ("package_corrupt_rate", float),
    "ingest": ("ingest_failure_rate", float),
    "replay": ("replay_failure_rate", float),
    "solve": ("solve_failure_rate", float),
    "crash": ("crash_shards",
              lambda text: tuple(int(part) for part in text.split("+"))),
}


def parse_fault_plan(spec: "str | dict | FaultPlan | None"
                     ) -> FaultPlan | None:
    """Parse a fault-plan spec: ``k=v`` CSV, JSON, or a JSON file path.

    The CSV grammar is the CLI's ``--faults`` argument::

        seed=7,flap=delft,period=16,blocks=0.05,crash=0

    Multi-valued keys join entries with ``+`` (``down=a+b``,
    ``crash=0+2``).  A JSON object (inline or in a file) uses the
    :class:`FaultPlan` field names directly.  ``None`` and the literal
    specs ``""``/``"0"``/``"off"``/``"none"`` parse to ``None``.
    """
    if spec is None or isinstance(spec, FaultPlan):
        return spec
    if isinstance(spec, dict):
        return _plan_from_obj(spec)
    text = spec.strip()
    if text.lower() in _OFF_SPECS:
        return None
    if text.lower() == "standard":
        text = STANDARD_PLAN_SPEC
    if not text.startswith("{"):
        candidate = Path(text)
        if candidate.suffix == ".json" or candidate.is_file():
            try:
                text = candidate.read_text(encoding="utf-8").strip()
            except OSError as exc:
                raise CmifError(
                    f"cannot read fault plan file {spec!r}: {exc}") \
                    from None
    if text.startswith("{"):
        try:
            return _plan_from_obj(json.loads(text))
        except json.JSONDecodeError as exc:
            raise CmifError(f"malformed JSON fault plan: {exc}") from None
    values: dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        key, separator, raw = part.partition("=")
        if not separator:
            raise CmifError(f"fault plan entries are key=value, "
                            f"got {part!r}")
        entry = _SPEC_KEYS.get(key.strip())
        if entry is None:
            raise CmifError(f"unknown fault plan key {key!r}; expected "
                            f"one of {sorted(_SPEC_KEYS)}")
        field_name, parser = entry
        try:
            values[field_name] = parser(raw.strip())
        except ValueError:
            raise CmifError(f"bad fault plan value for {key}: "
                            f"{raw!r}") from None
    return FaultPlan(**values)


def _plan_from_obj(obj: dict) -> FaultPlan:
    known = {field.name for field in fields(FaultPlan)}
    unknown = set(obj) - known
    if unknown:
        raise CmifError(f"unknown fault plan fields: {sorted(unknown)}")
    values = dict(obj)
    for name in ("down_sites", "flap_sites"):
        if name in values:
            values[name] = tuple(values[name])
    if "crash_shards" in values:
        values["crash_shards"] = tuple(int(index)
                                       for index in values["crash_shards"])
    return FaultPlan(**values)


def resolve_faults(faults: "FaultPlan | str | None") -> FaultPlan | None:
    """The effective plan for a top-level entry point.

    Explicit plans (instances or spec strings) win; ``None`` consults
    the ``REPRO_FAULTS`` environment variable so CI can run the whole
    tier-1 suite under a chaos plan without touching every call site.
    Returns ``None`` when no plan is configured — the zero-cost path.
    """
    if faults is not None:
        return parse_fault_plan(faults)
    return parse_fault_plan(os.environ.get(FAULTS_ENV))
