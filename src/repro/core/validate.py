"""Document consistency validation (paper sections 5.2 and 5.3.3).

The paper defines several "global consistency rules" over attributes and
structure: per-node name uniqueness, root-only dictionary attributes,
node-type restrictions for attributes, channel and style reference
validity, resolvable synchronization arc endpoints, and non-empty arc
windows.  This validator collects every violation as a
:class:`ValidationIssue` rather than stopping at the first, matching the
pipeline philosophy that the document structure's job is *signalling*
problems while "other mechanisms provide solutions".

Severity levels:

* ``error`` — the document cannot be scheduled or transported correctly;
* ``warning`` — legal but suspicious (an unreferenced channel, an event
  whose medium differs from its channel's medium).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.attributes import spec_for
from repro.core.channels import Medium
from repro.core.document import CmifDocument
from repro.core.errors import (ChannelError, CmifError, PathError,
                               StructureError, StyleError, SyncArcError)
from repro.core.nodes import ImmNode, Node, NodeKind
from repro.core.paths import node_path, resolve_path
from repro.core.tree import (common_ancestor, iter_preorder,
                             validate_sibling_names)

ERROR = "error"
WARNING = "warning"


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found by the validator."""

    severity: str
    code: str
    path: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code} at {self.path}: {self.message}"


class DocumentValidator:
    """Runs every consistency rule over a document."""

    def __init__(self, document: CmifDocument) -> None:
        self.document = document

    def run(self) -> list[ValidationIssue]:
        """Collect all issues over the whole document."""
        issues: list[ValidationIssue] = []
        issues.extend(self._check_sibling_names())
        issues.extend(self._check_styles())
        issues.extend(self._check_nodes())
        issues.extend(self._check_channel_usage())
        return issues

    # -- rule groups -----------------------------------------------------

    def _check_sibling_names(self) -> Iterator[ValidationIssue]:
        for message in validate_sibling_names(self.document.root):
            yield ValidationIssue(ERROR, "duplicate-sibling-name", "/",
                                  message)

    def _check_styles(self) -> Iterator[ValidationIssue]:
        try:
            self.document.styles.validate()
        except StyleError as exc:
            yield ValidationIssue(ERROR, "style-cycle", "/", str(exc))

    def _check_nodes(self) -> Iterator[ValidationIssue]:
        for node in iter_preorder(self.document.root):
            path = node_path(node)
            yield from self._check_attribute_placement(node, path)
            yield from self._check_style_references(node, path)
            yield from self._check_channel_reference(node, path)
            yield from self._check_leaf(node, path)
            yield from self._check_arcs(node, path)

    def _check_attribute_placement(self, node: Node,
                                   path: str) -> Iterator[ValidationIssue]:
        """Root-only and node-kind placement rules from the registry."""
        for attribute in node.attributes:
            spec = spec_for(attribute.name)
            if spec is None:
                continue
            if spec.root_only and node.parent is not None:
                yield ValidationIssue(
                    ERROR, "root-only-attribute", path,
                    f"attribute {attribute.name!r} should currently only "
                    f"occur on the root node")
            if (node.kind.value not in spec.node_kinds
                    and not spec.inherited and not spec.root_only):
                yield ValidationIssue(
                    ERROR, "attribute-node-kind", path,
                    f"attribute {attribute.name!r} is not allowed on "
                    f"{node.kind.value} nodes (allowed: "
                    f"{sorted(spec.node_kinds)})")

    def _check_style_references(self, node: Node,
                                path: str) -> Iterator[ValidationIssue]:
        names = node.attributes.get("style")
        if not names:
            return
        for name in names:
            if name not in self.document.styles:
                yield ValidationIssue(
                    ERROR, "undefined-style", path,
                    f"style {name!r} is not defined in the root node's "
                    f"style dictionary")

    def _check_channel_reference(self, node: Node,
                                 path: str) -> Iterator[ValidationIssue]:
        name = node.attributes.get("channel")
        if name is None:
            return
        if name not in self.document.channels:
            yield ValidationIssue(
                ERROR, "undefined-channel", path,
                f"channel {name!r} is not declared in the root node's "
                f"channel dictionary")

    def _check_leaf(self, node: Node, path: str) -> Iterator[ValidationIssue]:
        if not node.is_leaf:
            return
        styles = self.document.styles_or_none()
        channel_name = node.effective("channel", styles=styles)
        if channel_name is None:
            yield ValidationIssue(
                ERROR, "missing-channel", path,
                "leaf node has no channel attribute, own or inherited")
        if node.kind is NodeKind.EXT:
            file_id = node.effective("file", styles=styles)
            if file_id is None:
                yield ValidationIssue(
                    ERROR, "missing-file", path,
                    "external node has no file attribute, own or inherited")
            elif self.document.resolve_descriptor(file_id) is None:
                yield ValidationIssue(
                    WARNING, "unresolved-descriptor", path,
                    f"file {file_id!r} has no registered data descriptor; "
                    f"the document is transportable but not schedulable "
                    f"without a duration attribute")
        if isinstance(node, ImmNode) and node.data in ("", None, b""):
            yield ValidationIssue(
                WARNING, "empty-immediate", path,
                "immediate node carries no data")
        if (channel_name is not None
                and channel_name in self.document.channels):
            channel = self.document.channels.lookup(channel_name)
            declared = node.effective("medium", styles=styles)
            if declared is not None:
                try:
                    medium = Medium.from_name(declared)
                except ChannelError:
                    yield ValidationIssue(
                        ERROR, "unknown-medium", path,
                        f"medium {declared!r} is not recognized")
                    return
                if medium is not channel.medium:
                    yield ValidationIssue(
                        WARNING, "medium-mismatch", path,
                        f"node medium {medium.value!r} differs from channel "
                        f"{channel.name!r} medium {channel.medium.value!r}")

    def _check_arcs(self, node: Node, path: str) -> Iterator[ValidationIssue]:
        for arc in node.arcs:
            try:
                source = resolve_path(node, arc.source)
                destination = resolve_path(node, arc.destination)
            except PathError as exc:
                yield ValidationIssue(ERROR, "arc-endpoint", path, str(exc))
                continue
            if source is destination and arc.src_anchor is arc.dst_anchor:
                yield ValidationIssue(
                    WARNING, "arc-self-loop", path,
                    f"arc {arc.describe()} connects a node anchor to "
                    f"itself")
            try:
                common_ancestor(source, destination)
            except StructureError as exc:
                yield ValidationIssue(ERROR, "arc-disconnected", path,
                                      str(exc))
            try:
                arc.window_ms(self.document.timebase)
            except SyncArcError as exc:
                yield ValidationIssue(ERROR, "arc-empty-window", path,
                                      str(exc))

    def _check_channel_usage(self) -> Iterator[ValidationIssue]:
        """Warn about declared channels no event is directed to."""
        used: set[str] = set()
        styles = self.document.styles_or_none()
        for leaf in self.document.leaves():
            name = leaf.effective("channel", styles=styles)
            if name is not None:
                used.add(name)
        for name in self.document.channels.names():
            if name not in used:
                yield ValidationIssue(
                    WARNING, "unused-channel", "/",
                    f"channel {name!r} is declared but no event is "
                    f"directed to it")


def validate_document(document: CmifDocument,
                      strict: bool = False) -> list[ValidationIssue]:
    """Validate ``document``; with ``strict`` raise on the first error.

    Returns the full issue list either way so callers can also inspect
    warnings.
    """
    issues = DocumentValidator(document).run()
    if strict:
        errors = [issue for issue in issues if issue.severity == ERROR]
        if errors:
            summary = "; ".join(str(issue) for issue in errors[:5])
            more = f" (+{len(errors) - 5} more)" if len(errors) > 5 else ""
            raise CmifError(f"document is invalid: {summary}{more}")
    return issues
