"""Styles and the style dictionary (paper figure 7).

A *style* is "a shorthand for placing a set of attributes on a node".
The root node's ``style-dictionary`` attribute defines styles; a node's
``style`` attribute names one or more of them.  Two rules from the paper
are enforced here:

* "Style definitions may refer to other style definitions as long as no
  style refers to itself, directly or indirectly" — cycle detection in
  :meth:`StyleDictionary.validate`.
* "At runtime, each style name is looked up in the style directory of the
  root node" — undefined references raise :class:`StyleError`.

Expansion semantics: a style maps to a set of attributes; a style may
itself carry a ``style`` entry naming parent styles, whose attributes are
included first so the referring style's own attributes win.  When a node
names several styles, later names win over earlier names, and the node's
own explicit attributes always win over any style (styles are defaults,
never overrides).
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.core.errors import StyleError


class StyleDictionary:
    """The root node's style dictionary: style name -> attribute group."""

    def __init__(self, styles: dict[str, dict[str, Any]] | None = None) -> None:
        self._styles: dict[str, dict[str, Any]] = {}
        for name, body in (styles or {}).items():
            self.define(name, body)

    def define(self, name: str, body: dict[str, Any]) -> None:
        """Define (or redefine) the style ``name``.

        ``body`` maps attribute names to values; the reserved key
        ``style`` names parent styles to inherit from.
        """
        if not isinstance(body, dict):
            raise StyleError(f"style {name!r} body must be a dict, "
                             f"got {body!r}")
        self._styles[name] = dict(body)

    def __contains__(self, name: str) -> bool:
        return name in self._styles

    def __len__(self) -> int:
        return len(self._styles)

    def __iter__(self) -> Iterator[str]:
        return iter(self._styles)

    def names(self) -> list[str]:
        """Style names in definition order."""
        return list(self._styles)

    def body(self, name: str) -> dict[str, Any]:
        """The raw (unexpanded) body of style ``name``."""
        if name not in self._styles:
            raise StyleError(f"style {name!r} is not defined in the root "
                             f"node's style dictionary "
                             f"(defined: {sorted(self._styles)})")
        return dict(self._styles[name])

    def _parents(self, name: str) -> list[str]:
        parents = self._styles[name].get("style", ())
        if isinstance(parents, str):
            parents = (parents,)
        return list(parents)

    def validate(self) -> None:
        """Check all style references resolve and no cycles exist.

        Uses a three-colour depth-first search; a back edge is a cycle,
        which the paper forbids ("no style refers to itself, directly or
        indirectly").
        """
        WHITE, GREY, BLACK = 0, 1, 2
        colour = {name: WHITE for name in self._styles}

        def visit(name: str, trail: list[str]) -> None:
            if name not in self._styles:
                raise StyleError(
                    f"style {trail[-1]!r} refers to undefined style "
                    f"{name!r}" if trail else
                    f"undefined style {name!r}")
            if colour[name] == GREY:
                cycle = trail[trail.index(name):] + [name]
                raise StyleError(
                    "style definitions form a cycle: " + " -> ".join(cycle))
            if colour[name] == BLACK:
                return
            colour[name] = GREY
            for parent in self._parents(name):
                visit(parent, trail + [name])
            colour[name] = BLACK

        for name in self._styles:
            if colour[name] == WHITE:
                visit(name, [])

    def expand(self, name: str, _active: frozenset[str] = frozenset()
               ) -> dict[str, Any]:
        """Return the fully-expanded attribute set of style ``name``.

        Parent styles are expanded first so the style's own attributes
        override inherited ones.  Cycles raise :class:`StyleError` even if
        :meth:`validate` was never called.
        """
        if name in _active:
            raise StyleError(f"style {name!r} refers to itself, directly "
                             f"or indirectly")
        body = self.body(name)
        expanded: dict[str, Any] = {}
        for parent in self._parents(name):
            expanded.update(self.expand(parent, _active | {name}))
        for key, value in body.items():
            if key != "style":
                expanded[key] = value
        return expanded

    def expand_all(self, names: list[str] | tuple[str, ...]
                   ) -> dict[str, Any]:
        """Expand several styles; later names win over earlier names."""
        expanded: dict[str, Any] = {}
        for name in names:
            expanded.update(self.expand(name))
        return expanded

    @classmethod
    def from_group(cls, group: dict[str, Any]) -> "StyleDictionary":
        """Build the dictionary from a ``style-dictionary`` group value."""
        dictionary = cls()
        for name, body in group.items():
            if not isinstance(body, dict):
                raise StyleError(
                    f"style {name!r} definition must be a group, "
                    f"got {body!r}")
            dictionary.define(name, body)
        return dictionary

    def to_group(self) -> dict[str, Any]:
        """The ``style-dictionary`` group value form."""
        return {name: dict(body) for name, body in self._styles.items()}
