"""Relative node paths (paper section 5.3.2).

Synchronization arcs name their endpoints with "a relative path name in
the tree (by using named nodes)"; "the empty name specifies the current
node itself".  The concrete syntax implemented here:

* path components are separated by ``/``;
* a leading ``/`` makes the path root-relative;
* ``.`` (or the empty string / empty component) names the current node;
* ``..`` names the parent;
* a plain component names a direct child by its ``name`` attribute;
* ``#i`` names the i-th direct child (0-based document order), allowing
  unnamed nodes to be addressed — needed because the paper makes names
  optional.

:func:`node_path` produces a canonical root-relative path for any node,
preferring names and falling back to ``#i`` indices, so every node is
addressable and paths survive serialization round-trips.
"""

from __future__ import annotations

from repro.core.errors import PathError
from repro.core.nodes import ContainerNode, Node


def resolve_path(origin: Node, path: str) -> Node:
    """Resolve ``path`` relative to ``origin`` and return the node.

    Raises :class:`PathError` with the failing component on any
    resolution failure.
    """
    if not isinstance(path, str):
        raise PathError(f"path must be a string, got {path!r}")
    node: Node = origin
    remainder = path
    if path.startswith("/"):
        node = origin.root
        remainder = path[1:]
    if remainder in ("", "."):
        return node
    for component in remainder.split("/"):
        node = _step(node, component, origin, path)
    return node


def _step(node: Node, component: str, origin: Node, full_path: str) -> Node:
    """Resolve one path component from ``node``."""
    if component in ("", "."):
        return node
    if component == "..":
        if node.parent is None:
            raise PathError(
                f"path {full_path!r} (from {origin.label()}) steps above "
                f"the root")
        return node.parent
    if component.startswith("#"):
        return _indexed_child(node, component, full_path)
    if not isinstance(node, ContainerNode):
        raise PathError(
            f"path {full_path!r}: {node.label()} is a leaf and has no "
            f"child {component!r}")
    for child in node.children:
        if child.name == component:
            return child
    raise PathError(
        f"path {full_path!r}: {node.label()} has no child named "
        f"{component!r} (children: {[c.label() for c in node.children]})")


def _indexed_child(node: Node, component: str, full_path: str) -> Node:
    """Resolve a ``#i`` positional component."""
    try:
        index = int(component[1:])
    except ValueError:
        raise PathError(
            f"path {full_path!r}: malformed index component "
            f"{component!r}") from None
    children = node.children
    if not 0 <= index < len(children):
        raise PathError(
            f"path {full_path!r}: index {index} out of range for "
            f"{node.label()} with {len(children)} children")
    return children[index]


def node_path(node: Node) -> str:
    """The canonical root-relative path of ``node``.

    The root's path is ``/``.  Named nodes contribute their name;
    unnamed nodes contribute their ``#i`` position.
    """
    if node.parent is None:
        return "/"
    components: list[str] = []
    current: Node = node
    while current.parent is not None:
        parent = current.parent
        if current.name is not None:
            components.append(current.name)
        else:
            components.append(f"#{parent.index_of(current)}")
        current = parent
    return "/" + "/".join(reversed(components))


def path_map(root: Node) -> dict[int, str]:
    """Canonical root-relative paths for every node, in one walk.

    Produces exactly :func:`node_path`'s output for each node, keyed by
    ``id(node)`` — the batch form used by callers (the player's arc
    auditor) that would otherwise recompute per-node parent chains on
    every run.  The map is only valid while the tree is unmutated.
    """
    paths: dict[int, str] = {id(root): "/"}
    stack: list[tuple[Node, str]] = [(root, "")]
    while stack:
        node, prefix = stack.pop()
        if not isinstance(node, ContainerNode):
            continue
        for index, child in enumerate(node.children):
            component = (child.name if child.name is not None
                         else f"#{index}")
            child_path = f"{prefix}/{component}"
            paths[id(child)] = child_path
            stack.append((child, child_path))
    return paths


def relative_path(origin: Node, target: Node) -> str:
    """A path from ``origin`` that resolves to ``target``.

    Produces the shortest ``..``-prefixed form through the closest common
    ancestor; returns ``"."`` when origin and target coincide.
    """
    if origin is target:
        return "."
    origin_chain = [origin, *origin.ancestors()]
    target_chain = [target, *target.ancestors()]
    common = None
    origin_set = {id(n): i for i, n in enumerate(origin_chain)}
    for j, candidate in enumerate(target_chain):
        if id(candidate) in origin_set:
            common = candidate
            ups = origin_set[id(candidate)]
            downs = target_chain[:j]
            break
    if common is None:
        raise PathError(
            f"{origin.label()} and {target.label()} are not in the same "
            f"tree")
    components = [".."] * ups
    for child in reversed(downs):
        parent = child.parent
        assert parent is not None
        if child.name is not None:
            components.append(child.name)
        else:
            components.append(f"#{parent.index_of(child)}")
    return "/".join(components) if components else "."
