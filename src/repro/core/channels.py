"""Synchronization channels (paper sections 3.1 and 5.2).

A channel is "a placement framework for sequential and parallel events":
events mapped onto one channel are serialized in linear time order, while
events on different channels may run in parallel.  Each channel carries a
single medium; "it is possible to have several channels of the same medium
type" (the news example has two text channels, ``caption`` and ``label``).

Channels are declared in the root node's ``channel-dictionary`` attribute
and referenced from nodes through the inherited ``channel`` attribute.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.errors import ChannelError
from repro.core.values import validate_name


class Medium(enum.Enum):
    """The media a channel (or data block) may carry.

    The set covers every medium the paper's examples use: video streams,
    sound streams, graphic/image frames, and the two text roles (captions
    and labels are both text channels).  ``PROGRAM`` covers the paper's
    note that a data block "may also be a program that produces
    information of a particular type".
    """

    TEXT = "text"
    AUDIO = "audio"
    VIDEO = "video"
    IMAGE = "image"
    PROGRAM = "program"

    @classmethod
    def from_name(cls, name: str) -> "Medium":
        """Look a medium up by its symbolic name (case-insensitive)."""
        normalized = str(name).strip().lower()
        for medium in cls:
            if medium.value == normalized:
                return medium
        raise ChannelError(f"unknown medium {name!r}; expected one of "
                           f"{[m.value for m in cls]}")


#: Media that occupy screen real estate and therefore need a region from
#: the presentation mapping tool.
VISUAL_MEDIA = frozenset({Medium.TEXT, Medium.VIDEO, Medium.IMAGE})

#: Media that occupy loudspeaker channels.
AURAL_MEDIA = frozenset({Medium.AUDIO})


@dataclass
class Channel:
    """One declared synchronization channel.

    ``extra`` holds any additional declaration attributes beyond the
    medium (for example a preferred region size used as a presentation
    "preference default", which the paper says "may come from preference
    defaults provided with each atomic media block").
    """

    name: str
    medium: Medium
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        validate_name(self.name)
        if not isinstance(self.medium, Medium):
            self.medium = Medium.from_name(self.medium)

    @property
    def is_visual(self) -> bool:
        """True when this channel needs screen real estate."""
        return self.medium in VISUAL_MEDIA

    @property
    def is_aural(self) -> bool:
        """True when this channel needs a loudspeaker channel."""
        return self.medium in AURAL_MEDIA

    def declaration(self) -> dict[str, Any]:
        """The group-attribute form of this channel declaration."""
        body: dict[str, Any] = {"medium": self.medium.value}
        body.update(self.extra)
        return body


class ChannelDictionary:
    """The root node's channel dictionary.

    Preserves declaration order, which the viewer uses as the left-to-right
    lane order when rendering the figure-3 style structure view.
    """

    def __init__(self, channels: list[Channel] | None = None) -> None:
        self._channels: dict[str, Channel] = {}
        for channel in channels or []:
            self.declare(channel)

    def declare(self, channel: Channel) -> Channel:
        """Add a channel declaration; duplicate names are an error."""
        if channel.name in self._channels:
            raise ChannelError(f"channel {channel.name!r} declared twice")
        self._channels[channel.name] = channel
        return channel

    def declare_named(self, name: str, medium: Medium | str,
                      **extra: Any) -> Channel:
        """Declare a channel from its parts; returns the new channel."""
        return self.declare(Channel(name, medium if isinstance(medium, Medium)
                                    else Medium.from_name(medium), extra))

    def lookup(self, name: str) -> Channel:
        """Return the channel named ``name``; raise when undeclared."""
        channel = self._channels.get(name)
        if channel is None:
            raise ChannelError(
                f"channel {name!r} is not declared in the root node's "
                f"channel dictionary (declared: {sorted(self._channels)})")
        return channel

    def __contains__(self, name: str) -> bool:
        return name in self._channels

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self) -> Iterator[Channel]:
        return iter(self._channels.values())

    def names(self) -> list[str]:
        """Channel names in declaration order."""
        return list(self._channels)

    def by_medium(self, medium: Medium) -> list[Channel]:
        """All channels carrying ``medium``, in declaration order."""
        return [c for c in self if c.medium is medium]

    @classmethod
    def from_group(cls, group: dict[str, Any]) -> "ChannelDictionary":
        """Build the dictionary from a ``channel-dictionary`` group value.

        The group maps channel names to declaration dicts; each
        declaration must contain at least ``medium``.
        """
        dictionary = cls()
        for name, declaration in group.items():
            if not isinstance(declaration, dict) or "medium" not in declaration:
                raise ChannelError(
                    f"channel {name!r} declaration must be a group "
                    f"containing 'medium', got {declaration!r}")
            extra = {k: v for k, v in declaration.items() if k != "medium"}
            dictionary.declare(
                Channel(name, Medium.from_name(declaration["medium"]), extra))
        return dictionary

    def to_group(self) -> dict[str, Any]:
        """The ``channel-dictionary`` group value form."""
        return {channel.name: channel.declaration() for channel in self}
