"""A fluent authoring API for CMIF documents.

This is the programmatic face of the pipeline's *Document Structure
Mapping Tool* (paper section 2): "this tool allows the user to express
relationships among individual media blocks.  The relationships are
primarily temporal and spatial."  The builder produces a validated
:class:`~repro.core.document.CmifDocument`.

Example::

    builder = DocumentBuilder("news")
    builder.channel("audio", "audio")
    builder.channel("video", "video")
    with builder.par("story"):
        builder.ext("report", channel="video", file="crime.vid")
        builder.ext("voice", channel="audio", file="crime.aud")
    document = builder.build()

Containers nest through context managers so the Python block structure
mirrors the document tree, which keeps hand-written documents readable —
the paper's stated goal for the concrete format ("we have created CMIF
documents to be human-readable").
"""

from __future__ import annotations

import contextlib
from typing import Any, Iterator

from repro.core.channels import ChannelDictionary, Medium
from repro.core.descriptors import DataDescriptor
from repro.core.document import CmifDocument
from repro.core.errors import StructureError
from repro.core.nodes import (ContainerNode, ExtNode, ImmNode, Node,
                              ParNode, SeqNode)
from repro.core.styles import StyleDictionary
from repro.core.syncarc import (Anchor, MediaTime, Strictness, SyncArc)
from repro.core.timebase import TimeBase


class DocumentBuilder:
    """Builds a CMIF document incrementally.

    ``root_kind`` selects the root container: the news example's root is
    sequential (stories follow each other); a slide-show-with-soundtrack
    document would use a parallel root.
    """

    def __init__(self, name: str = "document", *, root_kind: str = "seq",
                 timebase: TimeBase | None = None) -> None:
        root: ContainerNode
        if root_kind == "seq":
            root = SeqNode(name)
        elif root_kind == "par":
            root = ParNode(name)
        else:
            raise StructureError(
                f"root_kind must be 'seq' or 'par', got {root_kind!r}")
        self._document = CmifDocument(
            root=root,
            channels=ChannelDictionary(),
            styles=StyleDictionary(),
            timebase=timebase,
        )
        self._stack: list[ContainerNode] = [root]

    # -- dictionaries ------------------------------------------------------

    def channel(self, name: str, medium: Medium | str,
                **extra: Any) -> "DocumentBuilder":
        """Declare a synchronization channel on the root."""
        self._document.channels.declare_named(name, medium, **extra)
        return self

    def style(self, name: str, **attributes: Any) -> "DocumentBuilder":
        """Define a style in the root's style dictionary.

        Pass ``style=("parent", ...)`` inside ``attributes`` to inherit
        from other styles.
        """
        self._document.styles.define(name, attributes)
        return self

    def descriptor(self, file_id: str,
                   descriptor: DataDescriptor) -> "DocumentBuilder":
        """Register the data descriptor a ``file`` attribute refers to."""
        self._document.register_descriptor(file_id, descriptor)
        return self

    # -- tree construction ---------------------------------------------------

    @property
    def current(self) -> ContainerNode:
        """The container new nodes are appended to."""
        return self._stack[-1]

    @contextlib.contextmanager
    def seq(self, name: str | None = None,
            **attributes: Any) -> Iterator[SeqNode]:
        """Open a sequential child container for the ``with`` body."""
        node = SeqNode(name, attributes)
        self.current.add(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            self._stack.pop()

    @contextlib.contextmanager
    def par(self, name: str | None = None,
            **attributes: Any) -> Iterator[ParNode]:
        """Open a parallel child container for the ``with`` body."""
        node = ParNode(name, attributes)
        self.current.add(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            self._stack.pop()

    def ext(self, name: str | None = None, *, file: str | None = None,
            channel: str | None = None, duration: MediaTime | float | None = None,
            **attributes: Any) -> ExtNode:
        """Append an external (data-descriptor-referencing) leaf."""
        merged = dict(attributes)
        if file is not None:
            merged["file"] = file
        if channel is not None:
            merged["channel"] = channel
        if duration is not None:
            merged["duration"] = duration
        node = ExtNode(name, merged)
        self.current.add(node)
        return node

    def imm(self, name: str | None = None, *, data: Any = "",
            channel: str | None = None, medium: str | None = None,
            duration: MediaTime | float | None = None,
            **attributes: Any) -> ImmNode:
        """Append an immediate (inline-data) leaf."""
        merged = dict(attributes)
        if channel is not None:
            merged["channel"] = channel
        if medium is not None:
            merged["medium"] = medium
        if duration is not None:
            merged["duration"] = duration
        node = ImmNode(name, merged, data)
        self.current.add(node)
        return node

    # -- synchronization -------------------------------------------------------

    def arc(self, owner: Node, *, source: str, destination: str,
            src_anchor: str | Anchor = Anchor.BEGIN,
            dst_anchor: str | Anchor = Anchor.BEGIN,
            strictness: str | Strictness = Strictness.MUST,
            offset: MediaTime | float = 0.0,
            min_delay: MediaTime | float = 0.0,
            max_delay: MediaTime | float | None = 0.0) -> SyncArc:
        """Attach an explicit synchronization arc to ``owner``.

        Bare numbers are interpreted as milliseconds.  ``max_delay=None``
        means an infinite maximum tolerable delay.
        """
        arc = SyncArc(
            source=source,
            destination=destination,
            src_anchor=(src_anchor if isinstance(src_anchor, Anchor)
                        else Anchor.from_name(src_anchor)),
            dst_anchor=(dst_anchor if isinstance(dst_anchor, Anchor)
                        else Anchor.from_name(dst_anchor)),
            strictness=(strictness if isinstance(strictness, Strictness)
                        else Strictness.from_name(strictness)),
            offset=_as_time(offset),
            min_delay=_as_time(min_delay),
            max_delay=None if max_delay is None else _as_time(max_delay),
        )
        owner.add_arc(arc)
        return arc

    # -- completion ----------------------------------------------------------------

    def build(self, validate: bool = True) -> CmifDocument:
        """Finish and return the document.

        With ``validate`` (the default) a strict validation pass runs and
        raises on structural errors, so a successfully built document is
        known-consistent.
        """
        if len(self._stack) != 1:
            raise StructureError(
                "build() called inside an open seq()/par() context")
        if validate:
            from repro.core.validate import validate_document
            validate_document(self._document, strict=True)
        return self._document


def _as_time(value: MediaTime | float) -> MediaTime:
    """Accept MediaTime or a bare number of milliseconds."""
    if isinstance(value, MediaTime):
        return value
    return MediaTime.ms(float(value))
