"""The CMIF document object (paper sections 3 and 5).

A :class:`CmifDocument` binds together the document tree, the root-node
dictionaries (channels, styles, time base) and the data-descriptor
resolver.  The root node "has a special function in the tree because it
is a place where various directory attributes are found and because it
provides an implied timing reference point for all other nodes in the
document".

Compilation (:meth:`CmifDocument.compile`) materializes one
:class:`~repro.core.descriptors.EventDescriptor` per leaf node — the
mapping of event descriptors onto synchronization channels that section
3.1 calls "a CMIF description".  Compilation touches only descriptors,
never payload bytes, preserving the paper's attribute-only manipulation
property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.channels import Channel, ChannelDictionary, Medium
from repro.core.descriptors import (DataDescriptor, EventDescriptor, Slice)
from repro.core.errors import (ChannelError, StructureError, ValueError_)
from repro.core.nodes import (ContainerNode, ImmNode, Node, NodeKind,
                              SeqNode)
from repro.core.paths import node_path
from repro.core.styles import StyleDictionary
from repro.core.timebase import MediaTime, TimeBase, Unit
from repro.core.tree import iter_leaves, iter_preorder, tree_stats

#: Type of the optional external descriptor resolver: file-id -> descriptor.
DescriptorResolver = Callable[[str], DataDescriptor | None]


class CmifDocument:
    """A complete CMIF document: tree + dictionaries + descriptor view."""

    def __init__(self, root: ContainerNode | None = None,
                 channels: ChannelDictionary | None = None,
                 styles: StyleDictionary | None = None,
                 timebase: TimeBase | None = None) -> None:
        self.root: ContainerNode = root if root is not None else SeqNode("document")
        if not isinstance(self.root, ContainerNode):
            raise StructureError("the document root must be a sequential or "
                                 "parallel node")
        self.channels = channels if channels is not None else ChannelDictionary()
        self.styles = styles if styles is not None else StyleDictionary()
        self.timebase = timebase if timebase is not None else TimeBase()
        #: Local data-descriptor directory, keyed by the ``file`` attribute
        #: value.  An external resolver (the DDBMS of figure 2) may be
        #: attached with :meth:`attach_resolver` and is consulted second.
        self.descriptors: dict[str, DataDescriptor] = {}
        self._resolver: DescriptorResolver | None = None
        #: Monotonic edit counter.  Every operation in
        #: :mod:`repro.core.edit` bumps it, giving schedule caches and the
        #: incremental scheduler a cheap identity for "the document as it
        #: was after edit N".
        self.revision: int = 0

    def bump_revision(self) -> int:
        """Advance the edit counter; returns the new revision."""
        self.revision += 1
        return self.revision

    # -- dictionaries ----------------------------------------------------

    def attach_resolver(self, resolver: DescriptorResolver) -> None:
        """Attach an external descriptor resolver (the optional DDBMS)."""
        self._resolver = resolver

    def register_descriptor(self, file_id: str,
                            descriptor: DataDescriptor) -> None:
        """Register a data descriptor under its ``file`` reference."""
        self.descriptors[file_id] = descriptor

    def resolve_descriptor(self, file_id: str) -> DataDescriptor | None:
        """Find the data descriptor for a ``file`` reference, if any."""
        descriptor = self.descriptors.get(file_id)
        if descriptor is None and self._resolver is not None:
            descriptor = self._resolver(file_id)
        return descriptor

    # -- root attribute round-trip ----------------------------------------

    def sync_root_attributes(self) -> None:
        """Materialize the dictionaries into root-node attributes.

        The concrete syntax stores channels, styles and the time base as
        root attributes (figure 7's "should currently only occur on the
        root node"); the writer calls this before serializing.
        """
        if len(self.channels):
            self.root.attributes.set("channel-dictionary",
                                     self.channels.to_group())
        if len(self.styles):
            self.root.attributes.set("style-dictionary",
                                     self.styles.to_group())
        self.root.attributes.set("timebase", {
            "frame-rate": self.timebase.frame_rate,
            "sample-rate": self.timebase.sample_rate,
            "byte-rate": self.timebase.byte_rate,
            "chars-per-second": self.timebase.chars_per_second,
        })

    @classmethod
    def from_root(cls, root: ContainerNode) -> "CmifDocument":
        """Reconstruct a document from a parsed tree's root attributes."""
        channels = ChannelDictionary()
        channel_group = root.attributes.get("channel-dictionary")
        if channel_group:
            channels = ChannelDictionary.from_group(channel_group)
        styles = StyleDictionary()
        style_group = root.attributes.get("style-dictionary")
        if style_group:
            styles = StyleDictionary.from_group(style_group)
        timebase = TimeBase()
        timebase_group = root.attributes.get("timebase")
        if timebase_group:
            timebase = TimeBase(
                frame_rate=float(timebase_group.get("frame-rate", 25.0)),
                sample_rate=float(timebase_group.get("sample-rate", 44100.0)),
                byte_rate=float(timebase_group.get("byte-rate", 176400.0)),
                chars_per_second=float(
                    timebase_group.get("chars-per-second", 15.0)),
            )
        return cls(root, channels, styles, timebase)

    # -- views -------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """All nodes in document (preorder) order."""
        return iter_preorder(self.root)

    def leaves(self) -> Iterator[Node]:
        """All leaf nodes (events) in document order."""
        return iter_leaves(self.root)

    def stats(self):
        """Tree statistics (see :func:`repro.core.tree.tree_stats`)."""
        return tree_stats(self.root)

    # -- event materialization ----------------------------------------------

    def channel_for(self, node: Node) -> Channel:
        """The channel a node's data is directed to (inherited attribute)."""
        channel_name = node.effective("channel", styles=self.styles_or_none())
        if channel_name is None:
            raise ChannelError(
                f"node {node_path(node)} has no channel attribute (own or "
                f"inherited); every event must be placed on a channel")
        return self.channels.lookup(channel_name)

    def styles_or_none(self) -> StyleDictionary | None:
        """The style dictionary, or None when no styles are defined."""
        return self.styles if len(self.styles) else None

    def _leaf_medium(self, node: Node, channel: Channel) -> Medium:
        """The medium of a leaf's data, defaulting to the channel medium."""
        declared = node.effective("medium", styles=self.styles_or_none())
        if declared is not None:
            return Medium.from_name(declared)
        if node.kind is NodeKind.IMM:
            return Medium.TEXT
        return channel.medium

    def _leaf_slice(self, node: Node) -> Slice | None:
        """The slice/clip restriction of an external node, if any."""
        styles = self.styles_or_none()
        for start_name, length_name in (("slice", "slice-length"),
                                        ("clip", "clip-length")):
            start = node.effective(start_name, styles=styles)
            length = node.effective(length_name, styles=styles)
            if start is not None or length is not None:
                begin = start if isinstance(start, MediaTime) else (
                    MediaTime.ms(float(start)) if start is not None
                    else MediaTime.ms(0))
                return Slice(begin, length)
        return None

    def _leaf_duration_ms(self, node: Node, medium: Medium,
                          descriptor: DataDescriptor | None,
                          slice_: Slice | None) -> float:
        """Resolve a leaf's presentation duration in milliseconds.

        Resolution order: explicit ``duration`` attribute; slice/clip
        length against the descriptor's intrinsic duration; descriptor
        intrinsic duration; for immediate text, a reading-speed estimate
        (chars-per-second from the time base).  Anything else is an
        error — the paper's example restriction that "the length of each
        of the segments is known in advance" is a hard requirement for
        scheduling.
        """
        styles = self.styles_or_none()
        explicit = node.effective("duration", styles=styles)
        if explicit is not None:
            value = (explicit if isinstance(explicit, MediaTime)
                     else MediaTime.ms(float(explicit)))
            return self.timebase.to_ms(value)
        intrinsic_ms = (descriptor.duration_ms(self.timebase)
                        if descriptor is not None else None)
        if slice_ is not None:
            start_ms, end_ms = slice_.bounds_ms(self.timebase, intrinsic_ms)
            return end_ms - start_ms
        if intrinsic_ms is not None:
            return intrinsic_ms
        if isinstance(node, ImmNode) and medium is Medium.TEXT:
            text = str(node.data)
            reading_time = MediaTime(max(1, len(text)), Unit.CHARACTERS)
            return self.timebase.to_ms(reading_time)
        raise ValueError_(
            f"cannot determine the duration of {node_path(node)}: no "
            f"duration attribute, no slice/clip length, and no intrinsic "
            f"descriptor duration")

    def compile(self) -> "CompiledDocument":
        """Materialize the event descriptors for every leaf node.

        Returns a :class:`CompiledDocument` with events in document
        order, per-channel event sequences (the linear-time-order rule of
        section 3.1), and the node -> event mapping the constraint
        builder uses.
        """
        events: list[EventDescriptor] = []
        by_node: dict[int, EventDescriptor] = {}
        per_channel: dict[str, list[EventDescriptor]] = {
            name: [] for name in self.channels.names()}
        for leaf in self.leaves():
            channel = self.channel_for(leaf)
            medium = self._leaf_medium(leaf, channel)
            descriptor: DataDescriptor | None = None
            slice_: Slice | None = None
            if leaf.kind is NodeKind.EXT:
                file_id = leaf.effective("file", styles=self.styles_or_none())
                if file_id is None:
                    raise StructureError(
                        f"external node {node_path(leaf)} has no file "
                        f"attribute (own or inherited)")
                descriptor = self.resolve_descriptor(file_id)
                slice_ = self._leaf_slice(leaf)
            duration_ms = self._leaf_duration_ms(
                leaf, medium, descriptor, slice_)
            path = node_path(leaf)
            event = EventDescriptor(
                event_id=path,
                node_path=path,
                channel=channel.name,
                medium=medium,
                duration_ms=duration_ms,
                descriptor=descriptor,
                slice_=slice_,
                attributes=leaf.level_attributes(self.styles_or_none()),
            )
            events.append(event)
            by_node[id(leaf)] = event
            per_channel.setdefault(channel.name, []).append(event)
        return CompiledDocument(document=self, events=events,
                                by_node=by_node, per_channel=per_channel)


@dataclass
class CompiledDocument:
    """The result of :meth:`CmifDocument.compile`.

    ``per_channel`` preserves document order within each channel, which
    the constraint builder turns into the channel serialization
    constraints ("events that are placed on a single channel are
    synchronized in linear time order").
    """

    document: CmifDocument
    events: list[EventDescriptor]
    by_node: dict[int, EventDescriptor]
    per_channel: dict[str, list[EventDescriptor]] = field(
        default_factory=dict)

    def event_for(self, node: Node) -> EventDescriptor:
        """The event materialized from ``node`` (a leaf)."""
        event = self.by_node.get(id(node))
        if event is None:
            raise StructureError(
                f"{node.label()} did not produce an event (is it a leaf "
                f"of this document?)")
        return event

    @property
    def total_duration_lower_bound_ms(self) -> float:
        """Sum of event durations — a trivial lower bound used in views."""
        return sum(event.duration_ms for event in self.events)

    def sharing_ratio(self) -> float:
        """Events per distinct data descriptor (figure 2's reuse claim).

        Immediate events have no descriptor and are excluded; an empty
        document reports 0.0.
        """
        described = [e for e in self.events if e.descriptor is not None]
        if not described:
            return 0.0
        distinct = {e.descriptor.descriptor_id for e in described}
        return len(described) / len(distinct)
