"""Document editing operations (paper sections 2 and 4).

The viewing tools "provide a means for a reader to 'view' or (possibly)
edit a document", and the paper is explicit that changing presentation
order is an *edit*, not a navigation: "re-ordering requires re-editing
the document".  This module provides the re-editing operations an
authoring tool needs, each preserving the tree's invariants (sibling
name uniqueness, parenthood) and each returning enough information to
undo:

* :func:`reorder` — move a child to a new position among its siblings;
* :func:`splice` — move a subtree under a different parent;
* :func:`duplicate` — copy a subtree (fresh nodes, same attributes),
  the authoring counterpart of descriptor sharing;
* :func:`retime` — change a leaf's duration;
* :func:`remove` — delete a subtree, reporting the arcs that dangle;
* :func:`add_arc` / :func:`remove_arc` — attach or detach an explicit
  synchronization arc (the sync-arc refinement loop of section 5.3.2).

Arc hygiene: operations that move or delete nodes re-resolve every arc
in the document afterwards and report the ones whose endpoints broke —
the editor's version of the validator's ``arc-endpoint`` rule.

Every successful operation bumps :attr:`CmifDocument.revision`, which is
what the incremental scheduler (:mod:`repro.timing.incremental`) and the
schedule cache (:class:`repro.timing.schedule.ScheduleCache`) key on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.document import CmifDocument
from repro.core.errors import PathError, StructureError
from repro.core.nodes import (ContainerNode, ExtNode, ImmNode, Node,
                              ParNode, SeqNode)
from repro.core.paths import node_path, resolve_path
from repro.core.syncarc import SyncArc
from repro.core.timebase import MediaTime
from repro.core.tree import iter_preorder


@dataclass
class EditReport:
    """The outcome of one editing operation."""

    operation: str
    subject: str
    dangling_arcs: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no synchronization arcs were broken."""
        return not self.dangling_arcs


def _dangling_arcs(document: CmifDocument) -> list[str]:
    """Every arc in the document whose endpoints no longer resolve."""
    broken: list[str] = []
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            try:
                resolve_path(node, arc.source)
                resolve_path(node, arc.destination)
            except PathError:
                broken.append(f"{node_path(node)}: {arc.describe()}")
    return broken


def reorder(document: CmifDocument, parent_path: str, child_name: str,
            new_index: int) -> EditReport:
    """Move the named child to ``new_index`` among its siblings.

    This is the operation the paper requires for changing event order
    ("re-ordering requires re-editing the document").
    """
    parent = resolve_path(document.root, parent_path)
    if not isinstance(parent, ContainerNode):
        raise StructureError(f"{parent.label()} is a leaf; it has no "
                             f"children to reorder")
    child = parent.child_named(child_name)
    count = len(parent.children)
    if not 0 <= new_index < count:
        raise StructureError(
            f"new index {new_index} out of range for {count} children")
    parent.detach(child)
    parent.insert(new_index, child)
    document.bump_revision()
    return EditReport(operation="reorder",
                      subject=node_path(child),
                      dangling_arcs=_dangling_arcs(document))


def splice(document: CmifDocument, node_path_: str, new_parent_path: str,
           index: int | None = None) -> EditReport:
    """Move a subtree under a different parent.

    Refuses to splice a node into its own subtree (which would detach it
    from the document) and preserves sibling-name uniqueness through the
    normal add() checks.
    """
    node = resolve_path(document.root, node_path_)
    new_parent = resolve_path(document.root, new_parent_path)
    if node.parent is None:
        raise StructureError("the root cannot be spliced")
    if not isinstance(new_parent, ContainerNode):
        raise StructureError(f"{new_parent.label()} is a leaf; it cannot "
                             f"receive children")
    current: Node | None = new_parent
    while current is not None:
        if current is node:
            raise StructureError(
                f"cannot splice {node.label()} into its own subtree")
        current = current.parent
    node.parent.detach(node)
    new_parent.add(node)
    if index is not None:
        new_parent.detach(node)
        new_parent.insert(index, node)
    document.bump_revision()
    return EditReport(operation="splice",
                      subject=node_path(node),
                      dangling_arcs=_dangling_arcs(document))


def _clone_node(node: Node) -> Node:
    """A deep structural copy with fresh node objects."""
    clone: Node
    if isinstance(node, SeqNode):
        clone = SeqNode()
    elif isinstance(node, ParNode):
        clone = ParNode()
    elif isinstance(node, ExtNode):
        clone = ExtNode()
    else:
        assert isinstance(node, ImmNode)
        clone = ImmNode(data=node.data)
    clone.attributes = node.attributes.copy()
    if isinstance(node, ContainerNode):
        assert isinstance(clone, ContainerNode)
        for child in node.children:
            clone.add(_clone_node(child))
    return clone


def duplicate(document: CmifDocument, node_path_: str,
              new_name: str) -> EditReport:
    """Copy a subtree next to the original under ``new_name``.

    The copy shares the original's ``file`` references — two events over
    one data descriptor, the figure-2 sharing pattern — but is a fully
    independent structure.
    """
    node = resolve_path(document.root, node_path_)
    parent = node.parent
    if parent is None:
        raise StructureError("the root cannot be duplicated")
    clone = _clone_node(node)
    clone.attributes.set("name", new_name)
    index = parent.index_of(node)
    parent.add(clone)
    parent.detach(clone)
    parent.insert(index + 1, clone)
    document.bump_revision()
    return EditReport(operation="duplicate",
                      subject=node_path(clone),
                      dangling_arcs=_dangling_arcs(document))


def retime(document: CmifDocument, node_path_: str,
           duration: MediaTime | float) -> EditReport:
    """Change a leaf's presentation duration."""
    node = resolve_path(document.root, node_path_)
    if not node.is_leaf:
        raise StructureError(
            f"{node.label()} is a container; its span is derived from "
            f"its children, not set directly")
    value = (duration if isinstance(duration, MediaTime)
             else MediaTime.ms(float(duration)))
    node.attributes.set("duration", value)
    document.bump_revision()
    return EditReport(operation="retime", subject=node_path(node))


def remove(document: CmifDocument, node_path_: str) -> EditReport:
    """Delete a subtree; dangling arcs are reported, not repaired.

    "CMIF plays a role in signalling problems, allowing other
    mechanisms to provide solutions" — the editor surfaces the broken
    arcs so an authoring tool (or the user) decides what to do.
    """
    node = resolve_path(document.root, node_path_)
    parent = node.parent
    if parent is None:
        raise StructureError("the root cannot be removed")
    subject = node_path(node)
    parent.detach(node)
    document.bump_revision()
    return EditReport(operation="remove", subject=subject,
                      dangling_arcs=_dangling_arcs(document))


def add_arc(document: CmifDocument, owner_path: str,
            arc: "SyncArc") -> EditReport:
    """Attach an explicit synchronization arc to the node at ``owner_path``.

    Both endpoints must resolve from the owner before the arc is
    attached, so an add never introduces a dangling arc.
    """
    owner = resolve_path(document.root, owner_path)
    resolve_path(owner, arc.source)
    resolve_path(owner, arc.destination)
    owner.add_arc(arc)
    document.bump_revision()
    return EditReport(operation="add-arc", subject=node_path(owner))


def remove_arc(document: CmifDocument, owner_path: str,
               index: int) -> EditReport:
    """Detach the ``index``-th arc anchored at ``owner_path``."""
    owner = resolve_path(document.root, owner_path)
    arcs = owner.arcs
    if not 0 <= index < len(arcs):
        raise StructureError(
            f"arc index {index} out of range for {owner.label()} with "
            f"{len(arcs)} arc(s)")
    remaining = arcs[:index] + arcs[index + 1:]
    if remaining:
        owner.attributes.set("sync-arc", remaining)
    else:
        owner.attributes.remove("sync-arc")
    document.bump_revision()
    return EditReport(operation="remove-arc", subject=node_path(owner))
