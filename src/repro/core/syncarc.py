"""Synchronization arcs (paper sections 3.1, 5.3.1 and 5.3.2).

An arc is "a directed connection between two event descriptors, under the
convention that the arc is drawn from the controlling event to the
controlled event".  Its tabular form (figure 9) is::

    type  source  offset  destination  min_delay  max_delay

where *type* combines an anchor ("whether this synchronization arc
concerns the beginning or the end of the event block being synchronized")
with a strictness ("a 'must' type or a 'may' type").  The governing
equation (section 5.3.1) is::

    tref + delta <= tactual <= tref + epsilon

with ``tref`` the anchored time of the source plus the arc's offset,
``delta`` the minimum acceptable delay and ``epsilon`` the maximum
tolerable delay.  The paper fixes the sign conventions enforced here:

* a *positive* minimum delay "has no meaning" — ``delta <= 0``;
* a *negative* maximum delay "has no meaning" — ``epsilon >= 0``;
* ``epsilon`` is "possibly infinite", represented as ``None``.

Arcs "can be placed at the beginning of an event or at the end of the
event", so the source carries its own anchor.  The section 3.2 discussion
of hyper-navigation ("conditional synchronization arcs that point to
events on separate channels") is implemented by :class:`ConditionalArc`;
:mod:`repro.pipeline.navigation` interprets it and
:mod:`repro.pipeline.navprogram` compiles it for the serving path.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.errors import SyncArcError
from repro.core.timebase import MediaTime, TimeBase


class Anchor(enum.Enum):
    """Which end of an event an arc endpoint attaches to."""

    BEGIN = "begin"
    END = "end"

    @classmethod
    def from_name(cls, name: str) -> "Anchor":
        """Look an anchor up by its symbolic name."""
        normalized = str(name).strip().lower()
        for anchor in cls:
            if anchor.value == normalized:
                return anchor
        raise SyncArcError(f"unknown anchor {name!r}; expected 'begin' "
                           f"or 'end'")


class Strictness(enum.Enum):
    """The may/must component of an arc's type field.

    MAY: "the requested type of synchronization is desirable but not
    essential" — the scheduler may relax (drop) the arc to resolve a
    conflict, and the player reports but tolerates violations.

    MUST: the environment "should do all it can to implement the requested
    type of synchronization, even at the expense of overall system
    performance" — never relaxed; a violated must arc is a hard error.
    """

    MAY = "may"
    MUST = "must"

    @classmethod
    def from_name(cls, name: str) -> "Strictness":
        """Look a strictness up by its symbolic name."""
        normalized = str(name).strip().lower()
        for strictness in cls:
            if strictness.value == normalized:
                return strictness
        raise SyncArcError(f"unknown strictness {name!r}; expected 'may' "
                           f"or 'must'")


#: Hard synchronization: delta = epsilon = 0 (paper section 5.3.1).
ZERO = MediaTime.ms(0.0)


@dataclass(frozen=True)
class SyncArc:
    """One explicit synchronization arc.

    ``source`` and ``destination`` are relative node paths (paper section
    5.3.2: "a relative path name in the tree (by using named nodes)"); the
    empty string names the node the arc is attached to.  Paths are
    resolved against the owning node by :mod:`repro.core.paths`.

    ``offset`` is the paper's "integral positive offset from the start of
    the controlling node", generalized to any media-dependent unit and to
    either anchor of the source.
    """

    source: str
    destination: str
    src_anchor: Anchor = Anchor.BEGIN
    dst_anchor: Anchor = Anchor.BEGIN
    strictness: Strictness = Strictness.MUST
    offset: MediaTime = ZERO
    min_delay: MediaTime = ZERO
    max_delay: MediaTime | None = ZERO

    def __post_init__(self) -> None:
        if not isinstance(self.source, str):
            raise SyncArcError(f"arc source must be a path string, "
                               f"got {self.source!r}")
        if not isinstance(self.destination, str):
            raise SyncArcError(f"arc destination must be a path string, "
                               f"got {self.destination!r}")
        if self.offset.value < 0:
            raise SyncArcError(
                f"arc offset must be non-negative (the paper specifies an "
                f"'integral positive offset'), got {self.offset!r}")
        if self.min_delay.value > 0:
            raise SyncArcError(
                f"a positive minimum delay has no meaning (paper section "
                f"5.3.1), got {self.min_delay!r}")
        if self.max_delay is not None and self.max_delay.value < 0:
            raise SyncArcError(
                f"a negative maximum delay has no meaning (paper section "
                f"5.3.1), got {self.max_delay!r}")

    @property
    def is_hard(self) -> bool:
        """True for a hard synchronization relationship (delta = epsilon = 0)."""
        return (self.min_delay.value == 0
                and self.max_delay is not None
                and self.max_delay.value == 0)

    @property
    def is_bounded(self) -> bool:
        """True when the arc imposes a finite maximum tolerable delay."""
        return self.max_delay is not None

    def window_ms(self, timebase: TimeBase) -> tuple[float, float | None]:
        """The admissible window (relative to tref) in milliseconds.

        Returns ``(delta_ms, epsilon_ms)`` with ``epsilon_ms`` None when
        the maximum delay is infinite.
        """
        delta = timebase.to_ms(self.min_delay)
        epsilon = (None if self.max_delay is None
                   else timebase.to_ms(self.max_delay))
        if epsilon is not None and delta > epsilon:
            raise SyncArcError(
                f"arc window is empty after unit conversion: "
                f"delta={delta}ms > epsilon={epsilon}ms")
        return delta, epsilon

    def type_field(self) -> str:
        """The figure-9 'type' column: destination anchor + strictness."""
        return f"{self.dst_anchor.value}/{self.strictness.value}"

    def describe(self) -> str:
        """A one-line human-readable rendering (figure-9 row order)."""
        epsilon = ("inf" if self.max_delay is None
                   else f"{self.max_delay.value:g}{self.max_delay.unit.value}")
        return (f"{self.type_field()}  "
                f"{self.source or '.'}@{self.src_anchor.value}  "
                f"+{self.offset.value:g}{self.offset.unit.value}  "
                f"{self.destination or '.'}@{self.dst_anchor.value}  "
                f"{self.min_delay.value:g}{self.min_delay.unit.value}  "
                f"{epsilon}")

    @classmethod
    def hard(cls, source: str, destination: str, *,
             src_anchor: Anchor = Anchor.BEGIN,
             dst_anchor: Anchor = Anchor.BEGIN,
             offset: MediaTime = ZERO,
             strictness: Strictness = Strictness.MUST) -> "SyncArc":
        """A hard arc: destination exactly at tref (delta = epsilon = 0)."""
        return cls(source, destination, src_anchor=src_anchor,
                   dst_anchor=dst_anchor, strictness=strictness,
                   offset=offset, min_delay=ZERO, max_delay=ZERO)

    @classmethod
    def window(cls, source: str, destination: str, *,
               min_delay: MediaTime, max_delay: MediaTime | None,
               src_anchor: Anchor = Anchor.BEGIN,
               dst_anchor: Anchor = Anchor.BEGIN,
               offset: MediaTime = ZERO,
               strictness: Strictness = Strictness.MUST) -> "SyncArc":
        """An arc with an explicit [delta, epsilon] tolerance window."""
        return cls(source, destination, src_anchor=src_anchor,
                   dst_anchor=dst_anchor, strictness=strictness,
                   offset=offset, min_delay=min_delay, max_delay=max_delay)


@dataclass(frozen=True)
class ConditionalArc(SyncArc):
    """A hyper-navigation arc (paper section 3.2).

    The arc only fires when ``condition`` is satisfied at presentation
    time; the player evaluates conditions against its interaction state
    (for example a reader selecting a link).  Unfired conditional arcs
    impose no scheduling constraint, which is how the paper's "non-linear
    ordering of data" coexists with a linear schedule.
    """

    condition: str = "always"

    def describe(self) -> str:
        return super().describe() + f"  when[{self.condition}]"
