"""The CMIF document tree nodes (paper section 5.1, figures 5 and 6).

"CMIF defines a document tree that is used to encode the hierarchical and
peer relationships among document events."  Each node is one of four
types:

* **Sequential node** — children execute "sequentially in a left-to-right
  order";
* **Parallel node** — children execute "in parallel with all of the other
  children";
* **External node** — a leaf pointing at a data descriptor (and thus an
  external data block), optionally restricted by slice/clip/crop;
* **Immediate node** — a leaf "containing data rather than a pointer",
  text by default, "useful for encoding small amounts of data directly in
  a document or for transporting data across environments that have no
  common storage server".

Attribute resolution implements the paper's inheritance rule: an
attribute marked inherited in the standard registry is visible to all
descendants unless overridden; styles are expanded at each level before
inheritance is considered (a style is "a shorthand for placing a set of
attributes on a node").
"""

from __future__ import annotations

import enum
from typing import Any, Iterator

from repro.core.attributes import AttributeList, spec_for
from repro.core.errors import StructureError
from repro.core.styles import StyleDictionary
from repro.core.syncarc import SyncArc
from repro.core.values import validate_name


class NodeKind(enum.Enum):
    """The four CMIF node types of paper figure 6."""

    SEQ = "seq"
    PAR = "par"
    EXT = "ext"
    IMM = "imm"

    @property
    def is_container(self) -> bool:
        """True for sequential and parallel nodes."""
        return self in (NodeKind.SEQ, NodeKind.PAR)

    @property
    def is_leaf(self) -> bool:
        """True for external and immediate nodes."""
        return not self.is_container


class Node:
    """Base class for all four node kinds.

    Nodes own an :class:`AttributeList` and a parent pointer.  Child
    management lives on :class:`ContainerNode`; leaves reject children.
    """

    kind: NodeKind

    def __init__(self, name: str | None = None,
                 attributes: dict[str, Any] | None = None) -> None:
        self.attributes = AttributeList(attributes)
        if name is not None:
            validate_name(name)
            self.attributes.set("name", name)
        self.parent: ContainerNode | None = None

    # -- identity -----------------------------------------------------

    @property
    def name(self) -> str | None:
        """The node's optional name (the ``name`` attribute)."""
        return self.attributes.get("name")

    @property
    def is_root(self) -> bool:
        """True when the node has no parent."""
        return self.parent is None

    @property
    def root(self) -> "Node":
        """The root of the tree this node belongs to."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    @property
    def depth(self) -> int:
        """Distance from the root (the root has depth 0)."""
        depth = 0
        node: Node = self
        while node.parent is not None:
            depth += 1
            node = node.parent
        return depth

    def ancestors(self) -> Iterator["Node"]:
        """Yield the parent, grandparent, ... up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    # -- children (overridden by ContainerNode) ------------------------

    @property
    def children(self) -> tuple["Node", ...]:
        """The node's children; empty for leaves."""
        return ()

    @property
    def is_leaf(self) -> bool:
        """True for external and immediate nodes."""
        return self.kind.is_leaf

    # -- attribute resolution ------------------------------------------

    def _style_dictionary(self) -> StyleDictionary | None:
        """The root node's style dictionary, if declared."""
        group = self.root.attributes.get("style-dictionary")
        if group is None:
            return None
        return StyleDictionary.from_group(group)

    def level_attributes(self,
                         styles: StyleDictionary | None = None
                         ) -> dict[str, Any]:
        """This node's attributes with its styles expanded underneath.

        The node's own attributes always win over style-supplied values
        (styles are defaults, never overrides).
        """
        own = self.attributes.as_dict()
        style_names = own.get("style")
        if not style_names:
            return own
        if styles is None:
            styles = self._style_dictionary()
        if styles is None:
            return own
        merged = styles.expand_all(tuple(style_names))
        merged.update(own)
        return merged

    def effective(self, name: str, default: Any = None,
                  styles: StyleDictionary | None = None) -> Any:
        """Resolve ``name`` with style expansion and inheritance.

        Resolution order: this node's own/style value; then, if the
        attribute is inherited per the standard registry, the nearest
        ancestor's own/style value.  Non-standard attributes do not
        inherit (the registry is the single source of inheritance rules).
        """
        if styles is None:
            styles = self._style_dictionary()
        level = self.level_attributes(styles)
        if name in level:
            return level[name]
        spec = spec_for(name)
        if spec is None or not spec.inherited:
            return default
        for ancestor in self.ancestors():
            level = ancestor.level_attributes(styles)
            if name in level:
                return level[name]
        return default

    # -- synchronization arcs -------------------------------------------

    @property
    def arcs(self) -> list[SyncArc]:
        """The explicit synchronization arcs anchored at this node."""
        return list(self.attributes.get("sync-arc", []))

    def add_arc(self, arc: SyncArc) -> SyncArc:
        """Attach an explicit synchronization arc to this node."""
        self.attributes.append_value("sync-arc", arc)
        return arc

    # -- misc -----------------------------------------------------------

    def label(self) -> str:
        """A short human-readable label for views and error messages."""
        name = self.name
        return f"{self.kind.value}({name})" if name else self.kind.value

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.label()}>"


class ContainerNode(Node):
    """Common behaviour of sequential and parallel nodes."""

    def __init__(self, name: str | None = None,
                 attributes: dict[str, Any] | None = None,
                 children: list[Node] | None = None) -> None:
        super().__init__(name, attributes)
        self._children: list[Node] = []
        for child in children or []:
            self.add(child)

    @property
    def children(self) -> tuple[Node, ...]:
        return tuple(self._children)

    def add(self, child: Node) -> Node:
        """Append ``child``, enforcing sibling-name uniqueness.

        The paper: "no two (direct) children of the same parent may have
        the same name, but otherwise a name may occur more than once in
        the tree."
        """
        if child.parent is not None:
            raise StructureError(
                f"node {child.label()} already has a parent "
                f"{child.parent.label()}; detach it first")
        if child is self or child in self.ancestors():
            raise StructureError(
                f"adding {child.label()} under {self.label()} would create "
                f"a cycle in the document tree")
        name = child.name
        if name is not None:
            for sibling in self._children:
                if sibling.name == name:
                    raise StructureError(
                        f"two direct children of {self.label()} share the "
                        f"name {name!r}")
        child.parent = self
        self._children.append(child)
        return child

    def insert(self, index: int, child: Node) -> Node:
        """Insert ``child`` at ``index`` with the same checks as add()."""
        self.add(child)
        self._children.insert(index, self._children.pop())
        return child

    def detach(self, child: Node) -> Node:
        """Remove ``child`` from this container and clear its parent."""
        try:
            self._children.remove(child)
        except ValueError:
            raise StructureError(
                f"{child.label()} is not a child of {self.label()}") from None
        child.parent = None
        return child

    def child_named(self, name: str) -> Node:
        """Return the direct child named ``name``."""
        for child in self._children:
            if child.name == name:
                return child
        raise StructureError(
            f"{self.label()} has no child named {name!r} "
            f"(children: {[c.label() for c in self._children]})")

    def index_of(self, child: Node) -> int:
        """Position of ``child`` among this container's children."""
        for index, candidate in enumerate(self._children):
            if candidate is child:
                return index
        raise StructureError(
            f"{child.label()} is not a child of {self.label()}")


class SeqNode(ContainerNode):
    """A sequential node: children run left-to-right, one after another."""

    kind = NodeKind.SEQ


class ParNode(ContainerNode):
    """A parallel node: children run concurrently; the node ends when the
    slowest child finishes ("start the successor when the slowest parallel
    node finishes")."""

    kind = NodeKind.PAR


class ExtNode(Node):
    """An external node: a leaf referencing a data descriptor.

    "External nodes should have (or inherit) a file attribute specifying
    the data descriptor containing the data."  The ``file`` attribute is
    inherited so several external nodes can reference subsections of one
    file through slice/clip/crop attributes.
    """

    kind = NodeKind.EXT

    @property
    def file(self) -> str | None:
        """The (possibly inherited) data-descriptor reference."""
        return self.effective("file")


class ImmNode(Node):
    """An immediate node: a leaf carrying its data inline.

    "The data is either text (the default) or another medium, as indicated
    by attributes associated with the node."
    """

    kind = NodeKind.IMM

    def __init__(self, name: str | None = None,
                 attributes: dict[str, Any] | None = None,
                 data: Any = "") -> None:
        super().__init__(name, attributes)
        self.data = data

    @property
    def medium_name(self) -> str:
        """The inline data's medium; text unless declared otherwise."""
        return self.attributes.get("medium", "text")


def make_node(kind: NodeKind | str, name: str | None = None,
              attributes: dict[str, Any] | None = None,
              data: Any = None) -> Node:
    """Factory covering all four node kinds, used by the parser."""
    if isinstance(kind, str):
        kind = NodeKind(kind)
    if kind is NodeKind.SEQ:
        return SeqNode(name, attributes)
    if kind is NodeKind.PAR:
        return ParNode(name, attributes)
    if kind is NodeKind.EXT:
        return ExtNode(name, attributes)
    return ImmNode(name, attributes, data if data is not None else "")
