"""Attribute value types (paper section 5.2).

The paper names four example attribute value definitions:

* ``ID`` — "a character value (without embedded spaces)",
* ``NUMBER`` — "a numeric value",
* ``STRING`` — "a character-string (in quotes, possibly with embedded
  spaces)",
* ``value*`` — "a (set of) pointer(s) to other attributes".

This module implements those four plus the composite values the standard
attributes of figure 7 require in practice: nested attribute groups (for
the style and channel dictionaries), media-time values (for offsets,
slices and clips), and rectangles (for crops).  Every kind knows how to
validate a raw Python object, so attribute assignment fails early with a
precise message rather than corrupting a document that will only be
rejected when transported.
"""

from __future__ import annotations

import enum
import math
import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.core.errors import ValueError_
from repro.core.timebase import MediaTime

#: Pattern for ID values: visible characters, no embedded whitespace.
_ID_PATTERN = re.compile(r"^\S+$")

#: Pattern for node and channel names: a conservative identifier set so
#: that names remain usable inside relative path expressions (which use
#: ``/`` and ``..`` as separators, see paths.py).
NAME_PATTERN = re.compile(r"^[A-Za-z0-9_][A-Za-z0-9_.\-]*$")


class ValueKind(enum.Enum):
    """The value categories an attribute may declare."""

    ID = "id"
    NUMBER = "number"
    STRING = "string"
    POINTERS = "pointers"      # the paper's ``value*`` field
    MEDIA_TIME = "media-time"
    RECT = "rect"
    GROUP = "group"            # nested name -> value mapping
    FLAG = "flag"
    ANY = "any"


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle, used by the ``crop`` attribute.

    Coordinates are pixels in the source image's own coordinate system;
    the presentation mapping tool later translates them into virtual
    real-estate coordinates.
    """

    x: int
    y: int
    width: int
    height: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError_(
                f"Rect must have positive size, got {self.width}x{self.height}")
        if self.x < 0 or self.y < 0:
            raise ValueError_(
                f"Rect origin must be non-negative, got ({self.x}, {self.y})")

    @property
    def area(self) -> int:
        """Pixel area of the rectangle."""
        return self.width * self.height

    def contains(self, other: "Rect") -> bool:
        """Return True when ``other`` lies fully inside this rectangle."""
        return (self.x <= other.x
                and self.y <= other.y
                and other.x + other.width <= self.x + self.width
                and other.y + other.height <= self.y + self.height)

    def intersect(self, other: "Rect") -> "Rect | None":
        """Return the overlap of two rectangles, or None when disjoint."""
        x1 = max(self.x, other.x)
        y1 = max(self.y, other.y)
        x2 = min(self.x + self.width, other.x + other.width)
        y2 = min(self.y + self.height, other.y + other.height)
        if x2 <= x1 or y2 <= y1:
            return None
        return Rect(x1, y1, x2 - x1, y2 - y1)

    def scaled(self, factor: float) -> "Rect":
        """Return the rectangle scaled about the origin by ``factor``."""
        if factor <= 0:
            raise ValueError_("scale factor must be positive")
        return Rect(int(self.x * factor), int(self.y * factor),
                    max(1, int(self.width * factor)),
                    max(1, int(self.height * factor)))


def validate_id(value: Any) -> str:
    """Validate an ID value: a non-empty string without whitespace."""
    if not isinstance(value, str) or not _ID_PATTERN.match(value):
        raise ValueError_(
            f"ID value must be a non-empty string without embedded "
            f"spaces, got {value!r}")
    return value


def validate_name(value: Any) -> str:
    """Validate a node/channel/style name.

    Names are stricter than general IDs because they participate in the
    relative path syntax of synchronization arcs (paper section 5.3.2).
    """
    if not isinstance(value, str) or not NAME_PATTERN.match(value):
        raise ValueError_(
            f"name must match {NAME_PATTERN.pattern}, got {value!r}")
    return value


def validate_number(value: Any) -> float | int:
    """Validate a NUMBER value: a finite int or float (bool excluded)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ValueError_(f"NUMBER value must be int or float, got {value!r}")
    if isinstance(value, float) and not math.isfinite(value):
        raise ValueError_(f"NUMBER value must be finite, got {value!r}")
    return value


def validate_string(value: Any) -> str:
    """Validate a STRING value: any str, embedded spaces allowed."""
    if not isinstance(value, str):
        raise ValueError_(f"STRING value must be str, got {value!r}")
    return value


def validate_pointers(value: Any) -> tuple[str, ...]:
    """Validate a ``value*`` field: one or more attribute-name pointers."""
    if isinstance(value, str):
        value = (value,)
    if not isinstance(value, (list, tuple)) or not value:
        raise ValueError_(
            f"pointer set must be a non-empty sequence of names, "
            f"got {value!r}")
    return tuple(validate_id(item) for item in value)


def validate_media_time(value: Any) -> MediaTime:
    """Validate a media-time value, accepting bare numbers as ms."""
    if isinstance(value, MediaTime):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return MediaTime.ms(float(value))
    raise ValueError_(f"expected MediaTime or number (ms), got {value!r}")


def validate_rect(value: Any) -> Rect:
    """Validate a rectangle value, accepting 4-sequences."""
    if isinstance(value, Rect):
        return value
    if isinstance(value, (list, tuple)) and len(value) == 4:
        x, y, w, h = value
        return Rect(int(x), int(y), int(w), int(h))
    raise ValueError_(f"expected Rect or (x, y, w, h), got {value!r}")


def validate_group(value: Any) -> dict[str, Any]:
    """Validate a nested attribute group (name -> value mapping)."""
    if not isinstance(value, dict):
        raise ValueError_(f"group value must be a dict, got {value!r}")
    for key in value:
        validate_id(key)
    return dict(value)


def validate_flag(value: Any) -> bool:
    """Validate a boolean flag value."""
    if not isinstance(value, bool):
        raise ValueError_(f"flag value must be bool, got {value!r}")
    return value


_VALIDATORS = {
    ValueKind.ID: validate_id,
    ValueKind.NUMBER: validate_number,
    ValueKind.STRING: validate_string,
    ValueKind.POINTERS: validate_pointers,
    ValueKind.MEDIA_TIME: validate_media_time,
    ValueKind.RECT: validate_rect,
    ValueKind.GROUP: validate_group,
    ValueKind.FLAG: validate_flag,
    ValueKind.ANY: lambda value: value,
}


def validate_value(kind: ValueKind, value: Any) -> Any:
    """Validate ``value`` against ``kind``, returning the normalized form."""
    return _VALIDATORS[kind](value)


def coerce_values(kind: ValueKind, values: Iterable[Any]) -> tuple:
    """Validate a sequence of values of one kind."""
    return tuple(validate_value(kind, value) for value in values)
