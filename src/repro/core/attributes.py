"""Attribute lists and the standard attribute registry (paper section 5.2).

The paper defines nodes as carrying *attribute lists* with three rules:

1. "each name may occur at most once in each list for each node";
2. "a node can have arbitrary attributes, although for some attributes a
   standard meaning and format is defined";
3. "Some attributes set properties that are inherited by children (and
   arbitrary levels of grandchildren) of the node on which they are set
   unless explicitly overridden; others only affect the node on which they
   are present."

:class:`AttributeList` implements rule 1 while preserving declaration
order (the paper's lists are ordered).  :class:`AttributeSpec` and the
:data:`STANDARD_ATTRIBUTES` registry implement rules 2 and 3, covering the
representative standard attributes of figure 7 plus the attributes the
rest of the paper uses implicitly (``duration``, ``medium``, ``sync-arc``).

Per-attribute placement rules ("should currently only occur on the root
node", "allowed only on certain node types") are recorded declaratively in
the spec and enforced by :mod:`repro.core.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.core.errors import AttributeError_
from repro.core.values import ValueKind, validate_value

#: Node kind names used in attribute placement rules.  Kept as strings so
#: this module does not need to import the node classes.
ALL_NODE_KINDS = frozenset({"seq", "par", "ext", "imm"})


@dataclass(frozen=True)
class AttributeSpec:
    """Declarative description of one standard attribute.

    ``inherited`` reproduces the paper's inheritance rule; ``root_only``
    reproduces figure 7's "should currently only occur on the root node";
    ``node_kinds`` restricts placement to certain node types (``slice`` and
    ``clip`` only make sense on external nodes, for example).
    ``repeatable_value`` records whether the value is logically a list
    (synchronization arcs accumulate rather than overwrite).
    """

    name: str
    kind: ValueKind
    description: str
    inherited: bool = False
    root_only: bool = False
    node_kinds: frozenset[str] = ALL_NODE_KINDS
    repeatable_value: bool = False


def _spec(name: str, kind: ValueKind, description: str, *,
          inherited: bool = False, root_only: bool = False,
          node_kinds: frozenset[str] | None = None,
          repeatable_value: bool = False) -> AttributeSpec:
    return AttributeSpec(
        name=name,
        kind=kind,
        description=description,
        inherited=inherited,
        root_only=root_only,
        node_kinds=node_kinds if node_kinds is not None else ALL_NODE_KINDS,
        repeatable_value=repeatable_value,
    )


#: The standard attribute registry.  The first nine entries are the
#: representative attributes of paper figure 7, with descriptions quoting
#: the figure; the remainder are attributes the paper's prose requires
#: (event durations, immediate-node media, and the synchronization arc
#: attribute of section 5.3.2).
STANDARD_ATTRIBUTES: dict[str, AttributeSpec] = {
    spec.name: spec for spec in [
        _spec(
            "name", ValueKind.ID,
            "Assigns a name to the current node. Names are optional and "
            "relative to their parent: no two direct children of the same "
            "parent may have the same name. Names are used by "
            "synchronization arcs to reference their source and "
            "destination nodes."),
        _spec(
            "style-dictionary", ValueKind.GROUP,
            "Defines one or more new styles; should currently only occur "
            "on the root node. Style definitions may refer to other style "
            "definitions as long as no style refers to itself, directly "
            "or indirectly.",
            root_only=True),
        _spec(
            "style", ValueKind.POINTERS,
            "Specifies one or more styles to be applied to the current "
            "node. At runtime each style name is looked up in the style "
            "dictionary of the root node."),
        _spec(
            "channel-dictionary", ValueKind.GROUP,
            "Defines one or more synchronization channels; should "
            "currently only occur on the root node. Each channel "
            "definition defines the medium used by that channel.",
            root_only=True),
        _spec(
            "channel", ValueKind.ID,
            "Specifies to which channel the current node's data should be "
            "directed. The name should name one of the channels defined "
            "in the root node's channel list. Inherited by children "
            "unless explicitly overridden.",
            inherited=True),
        _spec(
            "file", ValueKind.STRING,
            "Specifies the file to be used by external nodes. It is "
            "inherited, so that multiple external nodes can refer to "
            "subsections of the same file. It identifies the data "
            "descriptor used to reference data.",
            inherited=True),
        _spec(
            "t-formatting", ValueKind.GROUP,
            "A shorthand list of text formatting parameters (font, size, "
            "indent, vspace) sent to the text formatting channel. It is "
            "wise not to use these directly but to place them in a style "
            "definition."),
        _spec(
            "slice", ValueKind.MEDIA_TIME,
            "Specifies a subsection of the file to be used by an external "
            "node specifying binary data (offset; pairs with "
            "slice-length).",
            node_kinds=frozenset({"ext"})),
        _spec(
            "slice-length", ValueKind.MEDIA_TIME,
            "Length of the file subsection selected by slice.",
            node_kinds=frozenset({"ext"})),
        _spec(
            "crop", ValueKind.RECT,
            "Specifies a subimage of an image.",
            node_kinds=frozenset({"ext", "imm"})),
        _spec(
            "clip", ValueKind.MEDIA_TIME,
            "Specifies the start of a part of a sound fragment (pairs "
            "with clip-length).",
            node_kinds=frozenset({"ext", "imm"})),
        _spec(
            "clip-length", ValueKind.MEDIA_TIME,
            "Length of the sound part selected by clip.",
            node_kinds=frozenset({"ext", "imm"})),
        _spec(
            "duration", ValueKind.MEDIA_TIME,
            "Presentation duration of a leaf event. When absent, the "
            "duration is derived from the data descriptor (the paper's "
            "'length of each segment is known in advance' assumption).",
            node_kinds=frozenset({"ext", "imm"})),
        _spec(
            "medium", ValueKind.ID,
            "Medium of an immediate node's inline data; text is the "
            "default. Also used in channel definitions.",
            node_kinds=frozenset({"imm", "ext"})),
        _spec(
            "sync-arc", ValueKind.ANY,
            "An explicit synchronization arc (type, source, offset, "
            "destination, min-delay, max-delay) anchored at this node "
            "(section 5.3.2). Repeatable: a node may carry several arcs.",
            repeatable_value=True),
        _spec(
            "timebase", ValueKind.GROUP,
            "Unit conversion rates (frame-rate, sample-rate, byte-rate, "
            "chars-per-second) for media-dependent units; root only.",
            root_only=True),
        _spec(
            "title", ValueKind.STRING,
            "Human-readable document or section title; purely "
            "descriptive."),
        _spec(
            "comment", ValueKind.STRING,
            "Free-form annotation; ignored by all tools."),
    ]
}


def spec_for(name: str) -> AttributeSpec | None:
    """Return the standard spec for ``name``, or None for a free attribute.

    Free (non-standard) attributes are explicitly allowed by the paper:
    CMIF "does not interpret the meaning of these attributes — it simply
    allows them to be passed on to the required system tools".
    """
    return STANDARD_ATTRIBUTES.get(name)


@dataclass
class Attribute:
    """A single name/value pair in an attribute list."""

    name: str
    value: Any

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise AttributeError_(
                f"attribute name must be a non-empty string, "
                f"got {self.name!r}")
        spec = spec_for(self.name)
        if spec is not None:
            if spec.repeatable_value:
                # Repeatable attributes store a list of validated items;
                # validation of the items happens where the item type is
                # known (sync arcs validate themselves on construction).
                if not isinstance(self.value, list):
                    self.value = [self.value]
            else:
                self.value = validate_value(spec.kind, self.value)

    @property
    def spec(self) -> AttributeSpec | None:
        """The standard spec for this attribute, if any."""
        return spec_for(self.name)


class AttributeList:
    """An ordered mapping of attribute names to values, names unique.

    Implements the paper's rule that "each name may occur at most once in
    each list for each node".  For repeatable attributes (currently only
    ``sync-arc``) the single entry holds a list and :meth:`append_value`
    extends it.
    """

    def __init__(self, attributes: dict[str, Any] | None = None) -> None:
        self._items: dict[str, Attribute] = {}
        if attributes:
            for name, value in attributes.items():
                self.set(name, value)

    def set(self, name: str, value: Any) -> None:
        """Set (or overwrite) the attribute ``name``."""
        self._items[name] = Attribute(name, value)

    def append_value(self, name: str, value: Any) -> None:
        """Append ``value`` to a repeatable attribute's value list."""
        spec = spec_for(name)
        if spec is None or not spec.repeatable_value:
            raise AttributeError_(
                f"attribute {name!r} is not repeatable; use set()")
        if name in self._items:
            self._items[name].value.append(value)
        else:
            self.set(name, [value])

    def get(self, name: str, default: Any = None) -> Any:
        """Return the value of ``name``, or ``default`` when absent."""
        item = self._items.get(name)
        return item.value if item is not None else default

    def require(self, name: str) -> Any:
        """Return the value of ``name``, raising when absent."""
        item = self._items.get(name)
        if item is None:
            raise AttributeError_(f"required attribute {name!r} is absent")
        return item.value

    def remove(self, name: str) -> None:
        """Delete the attribute ``name`` (missing names are ignored)."""
        self._items.pop(name, None)

    def __contains__(self, name: str) -> bool:
        return name in self._items

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._items.values())

    def names(self) -> list[str]:
        """Attribute names in declaration order."""
        return list(self._items)

    def as_dict(self) -> dict[str, Any]:
        """A plain name -> value snapshot (values are not copied)."""
        return {name: item.value for name, item in self._items.items()}

    def copy(self) -> "AttributeList":
        """A shallow copy (repeatable value lists are copied)."""
        clone = AttributeList()
        for name, item in self._items.items():
            value = item.value
            if isinstance(value, list):
                value = list(value)
            clone.set(name, value)
        return clone

    def __repr__(self) -> str:
        inner = ", ".join(f"{a.name}={a.value!r}" for a in self)
        return f"AttributeList({inner})"
