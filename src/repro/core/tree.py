"""Tree traversal and analysis utilities (paper section 5.3.3).

The conflict-handling discussion relies on tree operations: "the parents
of a synchronization node can be traced until the common ancestor
containing the source and destination of the arc is found".  This module
provides that trace plus the traversals every pipeline tool shares:
preorder iteration, leaf enumeration in document order, document-order
comparison, and summary statistics (the "internal table-of-contents
function" of the document structure map).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.core.errors import StructureError
from repro.core.nodes import ContainerNode, Node, NodeKind


def iter_preorder(root: Node) -> Iterator[Node]:
    """Yield ``root`` and all descendants in document (preorder) order."""
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def iter_postorder(root: Node) -> Iterator[Node]:
    """Yield all nodes with every child before its parent."""
    # Two-stack iterative postorder keeps recursion limits out of play for
    # machine-generated documents with deep nesting.
    stack: list[Node] = [root]
    output: list[Node] = []
    while stack:
        node = stack.pop()
        output.append(node)
        stack.extend(node.children)
    return reversed(output)


def iter_leaves(root: Node) -> Iterator[Node]:
    """Yield the leaf (external and immediate) nodes in document order."""
    for node in iter_preorder(root):
        if node.is_leaf:
            yield node


def find_nodes(root: Node, predicate: Callable[[Node], bool]) -> list[Node]:
    """All nodes under ``root`` satisfying ``predicate``, document order."""
    return [node for node in iter_preorder(root) if predicate(node)]


def find_named(root: Node, name: str) -> list[Node]:
    """All nodes named ``name`` (names need only be sibling-unique)."""
    return find_nodes(root, lambda node: node.name == name)


def common_ancestor(a: Node, b: Node) -> Node:
    """The closest common ancestor of ``a`` and ``b`` (possibly a or b).

    This is the trace the paper prescribes for validating relative arcs.
    """
    ancestors_of_a = {id(n) for n in [a, *a.ancestors()]}
    for candidate in [b, *b.ancestors()]:
        if id(candidate) in ancestors_of_a:
            return candidate
    raise StructureError(
        f"{a.label()} and {b.label()} do not share a tree")


def document_order_index(root: Node) -> dict[int, int]:
    """Map ``id(node)`` to its preorder position under ``root``."""
    return {id(node): i for i, node in enumerate(iter_preorder(root))}


def precedes(a: Node, b: Node) -> bool:
    """True when ``a`` comes strictly before ``b`` in document order."""
    order = document_order_index(common_ancestor(a, b).root)
    return order[id(a)] < order[id(b)]


def subtree_of(ancestor: Node, node: Node) -> bool:
    """True when ``node`` lies in the subtree rooted at ``ancestor``."""
    current: Node | None = node
    while current is not None:
        if current is ancestor:
            return True
        current = current.parent
    return False


@dataclass(frozen=True)
class TreeStats:
    """Summary statistics of a document tree.

    These are the numbers the building-block bench (tab1) reports and
    that the attribute-only manipulation experiments use to show how
    little of a document is bulk data.
    """

    total_nodes: int
    seq_nodes: int
    par_nodes: int
    ext_nodes: int
    imm_nodes: int
    max_depth: int
    attribute_count: int
    arc_count: int

    @property
    def leaf_count(self) -> int:
        """Number of leaf (event-producing) nodes."""
        return self.ext_nodes + self.imm_nodes

    @property
    def container_count(self) -> int:
        """Number of sequential plus parallel nodes."""
        return self.seq_nodes + self.par_nodes


def tree_stats(root: Node) -> TreeStats:
    """Compute :class:`TreeStats` for the tree under ``root``."""
    counts = {kind: 0 for kind in NodeKind}
    max_depth = 0
    attribute_count = 0
    arc_count = 0
    for node in iter_preorder(root):
        counts[node.kind] += 1
        max_depth = max(max_depth, node.depth)
        attribute_count += len(node.attributes)
        arc_count += len(node.arcs)
    return TreeStats(
        total_nodes=sum(counts.values()),
        seq_nodes=counts[NodeKind.SEQ],
        par_nodes=counts[NodeKind.PAR],
        ext_nodes=counts[NodeKind.EXT],
        imm_nodes=counts[NodeKind.IMM],
        max_depth=max_depth,
        attribute_count=attribute_count,
        arc_count=arc_count,
    )


def validate_sibling_names(root: Node) -> list[str]:
    """Return messages for any duplicate sibling names under ``root``.

    Normally :meth:`ContainerNode.add` prevents duplicates, but documents
    built by deserialization or by renaming nodes after insertion can
    violate the rule; the validator re-checks it globally.
    """
    problems: list[str] = []
    for node in iter_preorder(root):
        if not isinstance(node, ContainerNode):
            continue
        seen: dict[str, int] = {}
        for child in node.children:
            name = child.name
            if name is None:
                continue
            seen[name] = seen.get(name, 0) + 1
        for name, count in seen.items():
            if count > 1:
                problems.append(
                    f"{node.label()} has {count} direct children named "
                    f"{name!r}")
    return problems
