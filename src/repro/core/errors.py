"""Exception hierarchy for the CMIF reproduction.

Every error raised by the library derives from :class:`CmifError` so that
callers can catch library failures with a single handler.  The hierarchy
mirrors the paper's separation of concerns: structural errors concern the
document tree, attribute errors concern the attribute model (paper section
5.2), synchronization errors concern arcs and scheduling (section 5.3), and
pipeline errors concern the CWI/Multimedia Pipeline tools (section 2).
"""

from __future__ import annotations


class CmifError(Exception):
    """Base class for all errors raised by this library."""


class StructureError(CmifError):
    """The document tree violates a structural rule.

    Examples: two direct children of one parent sharing a name, a leaf node
    given children, or a container node used where a leaf is required.
    """


class AttributeError_(CmifError):
    """An attribute list violates the attribute model.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`AttributeError`, which Python raises for missing object
    attributes and which has an entirely different meaning.
    """


class ValueError_(AttributeError_):
    """An attribute value does not fit its declared value type."""


class StyleError(AttributeError_):
    """A style reference is undefined or style definitions form a cycle."""


class ChannelError(AttributeError_):
    """A channel reference is undefined or a channel is misdeclared."""


class PathError(StructureError):
    """A relative node path (paper section 5.3.2) cannot be resolved."""


class SyncArcError(CmifError):
    """A synchronization arc is malformed.

    Raised for positive minimum delays or negative maximum delays (which the
    paper declares meaningless), for min > max windows, and for arcs whose
    endpoints cannot be resolved.
    """


class SchedulingConflict(CmifError):
    """The synchronization constraints admit no schedule.

    Corresponds to conflict class (1) of paper section 5.3.3: an
    unreasonable synchronization constraint was defined, directly or
    indirectly, by the author.  The ``cycle`` attribute, when present,
    carries the list of constraints forming the infeasible cycle.
    """

    def __init__(self, message: str, cycle: list | None = None) -> None:
        super().__init__(message)
        self.cycle = list(cycle) if cycle else []


class DeviceConstraintError(CmifError):
    """A target environment cannot honour a document requirement.

    Corresponds to conflict class (2) of paper section 5.3.3: device
    characteristics limit the ability of a particular environment to support
    a given document.
    """


class NavigationError(CmifError):
    """A navigation operation left relative arcs without a live source.

    Corresponds to conflict class (3) of paper section 5.3.3: fast-forward
    or fast-reverse reached a region whose incoming relative arcs reference
    events that were never executed.
    """


class FormatError(CmifError):
    """The concrete CMIF text (or JSON) form cannot be parsed."""

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(message + location)
        self.line = line
        self.column = column


class StoreError(CmifError):
    """A data-store (DDBMS) operation failed."""


class QueryError(StoreError):
    """An attribute query over the data store is malformed."""


class TransportError(CmifError):
    """Packaging or unpacking a transportable document failed."""


class MediaError(CmifError):
    """A media payload operation (slice, clip, crop) is invalid."""


class PlaybackError(CmifError):
    """The discrete-event player entered an invalid state."""
