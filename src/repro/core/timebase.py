"""Media-dependent time units and conversion (paper sections 5.3.2 and 6).

The paper allows synchronization offsets to be "expressed in terms of
media-dependent units (such as seconds, frames, bytes, etc.)" and lists the
resolution of delay times and sampling frequencies as one of the first
transportability problems (section 6).  This module provides:

* :class:`Unit` — the supported media-dependent units,
* :class:`MediaTime` — a value tagged with its unit,
* :class:`TimeBase` — the rates needed to convert any unit to canonical
  milliseconds, so that a scheduler can mix constraints given in frames,
  audio samples and seconds in a single system.

Canonical time is a ``float`` number of milliseconds.  Milliseconds were
chosen because every rate in the paper's examples (video frame rates,
audio sample rates, reading speeds for captions) divides cleanly into
sub-second periods, and because a float millisecond keeps round-trip error
well below human-perceptible synchronization skew (about 20 ms for
audio/video lip sync).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.core.errors import ValueError_

#: Absolute tolerance, in milliseconds, for canonical-time comparisons.
TIME_EPSILON_MS = 1e-6


class Unit(enum.Enum):
    """Media-dependent units in which offsets and delays may be expressed."""

    MILLISECONDS = "ms"
    SECONDS = "s"
    FRAMES = "frames"
    SAMPLES = "samples"
    BYTES = "bytes"
    CHARACTERS = "chars"

    @classmethod
    def from_name(cls, name: str) -> "Unit":
        """Return the unit whose symbolic name is ``name``.

        Accepts both the short form used in the concrete syntax (``"ms"``,
        ``"s"``) and the enum member name (``"SECONDS"``).
        """
        normalized = name.strip().lower()
        for unit in cls:
            if normalized in (unit.value, unit.name.lower()):
                return unit
        raise ValueError_(f"unknown time unit {name!r}")


@dataclass(frozen=True)
class MediaTime:
    """A scalar duration or offset tagged with its media-dependent unit.

    ``MediaTime`` is a value object: immutable, hashable, and comparable
    only after conversion through a :class:`TimeBase` (comparing a frame
    count with a sample count is meaningless without rates).
    """

    value: float
    unit: Unit = Unit.MILLISECONDS

    def __post_init__(self) -> None:
        if not math.isfinite(self.value):
            raise ValueError_("MediaTime value must be finite")

    @classmethod
    def ms(cls, value: float) -> "MediaTime":
        """Construct a value in milliseconds."""
        return cls(float(value), Unit.MILLISECONDS)

    @classmethod
    def seconds(cls, value: float) -> "MediaTime":
        """Construct a value in seconds."""
        return cls(float(value), Unit.SECONDS)

    @classmethod
    def frames(cls, value: float) -> "MediaTime":
        """Construct a value in video frames."""
        return cls(float(value), Unit.FRAMES)

    @classmethod
    def samples(cls, value: float) -> "MediaTime":
        """Construct a value in audio samples."""
        return cls(float(value), Unit.SAMPLES)

    @classmethod
    def bytes(cls, value: float) -> "MediaTime":
        """Construct a value in data bytes."""
        return cls(float(value), Unit.BYTES)

    def scaled(self, factor: float) -> "MediaTime":
        """Return this value multiplied by ``factor``, same unit."""
        return MediaTime(self.value * factor, self.unit)

    def __repr__(self) -> str:
        return f"MediaTime({self.value:g} {self.unit.value})"


@dataclass(frozen=True)
class TimeBase:
    """Conversion rates from media-dependent units to milliseconds.

    The rates correspond to the data-descriptor attributes the paper says a
    capture tool should record (section 6: "sound coordinates, sampling
    frequencies, etc."):

    * ``frame_rate`` — video frames per second,
    * ``sample_rate`` — audio samples per second,
    * ``byte_rate`` — data bytes per second (stream bandwidth),
    * ``chars_per_second`` — caption/label reading speed, used for text
      durations.
    """

    frame_rate: float = 25.0
    sample_rate: float = 44100.0
    byte_rate: float = 176400.0
    chars_per_second: float = 15.0

    def __post_init__(self) -> None:
        for field in ("frame_rate", "sample_rate", "byte_rate",
                      "chars_per_second"):
            rate = getattr(self, field)
            if not (math.isfinite(rate) and rate > 0):
                raise ValueError_(f"TimeBase {field} must be positive and "
                                  f"finite, got {rate!r}")

    def _rate_for(self, unit: Unit) -> float:
        """Return the per-second rate that converts ``unit`` to seconds."""
        if unit is Unit.FRAMES:
            return self.frame_rate
        if unit is Unit.SAMPLES:
            return self.sample_rate
        if unit is Unit.BYTES:
            return self.byte_rate
        if unit is Unit.CHARACTERS:
            return self.chars_per_second
        raise ValueError_(f"unit {unit} has no rate")

    def to_ms(self, time: MediaTime) -> float:
        """Convert ``time`` to canonical milliseconds."""
        if time.unit is Unit.MILLISECONDS:
            return time.value
        if time.unit is Unit.SECONDS:
            return time.value * 1000.0
        return time.value / self._rate_for(time.unit) * 1000.0

    def from_ms(self, ms: float, unit: Unit) -> MediaTime:
        """Convert canonical milliseconds back into ``unit``."""
        if unit is Unit.MILLISECONDS:
            return MediaTime(ms, unit)
        if unit is Unit.SECONDS:
            return MediaTime(ms / 1000.0, unit)
        return MediaTime(ms / 1000.0 * self._rate_for(unit), unit)

    def convert(self, time: MediaTime, unit: Unit) -> MediaTime:
        """Convert ``time`` into ``unit`` through canonical milliseconds."""
        return self.from_ms(self.to_ms(time), unit)


#: The default time base used when a document does not declare rates.
DEFAULT_TIMEBASE = TimeBase()


def times_close(a_ms: float, b_ms: float,
                epsilon: float = TIME_EPSILON_MS) -> bool:
    """Return True when two canonical times are equal within tolerance."""
    return abs(a_ms - b_ms) <= epsilon
