"""Data blocks, data descriptors and event descriptors (paper section 3.1).

Figure 2 of the paper separates three layers:

* **Data blocks** hold "data that is typically associated with a single
  medium"; their fundamental property is *atomicity* — a block "can not be
  further decomposed or sub-scheduled".
* **Data descriptors** are "collections of attributes that describe the
  nature of the data block" (format, resolution, length, resources);
  CMIF "does not interpret the meaning of these attributes".
* **Event descriptors** describe "how a single instance of a data block is
  integrated into a multimedia document"; "the event descriptor can be
  used to define multiple uses of a single data descriptor".

In this implementation, data blocks carry synthetic payloads produced by
:mod:`repro.media` / :mod:`repro.pipeline.capture`; data descriptors are
the attribute records stored in the DDBMS (:mod:`repro.store`); and event
descriptors are materialized from the document tree's leaf nodes when a
document is compiled for scheduling.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any

from repro.core.errors import MediaError, ValueError_
from repro.core.channels import Medium
from repro.core.timebase import MediaTime, TimeBase, Unit


@dataclass
class DataBlock:
    """The atomic element of single-media data.

    ``payload`` is opaque to CMIF proper: the document structure never
    interprets it (the paper's point about manipulating "relatively small
    clusters of data (the attributes) rather than the often massive
    amounts of media-based data itself").  ``payload`` may also be a
    zero-argument callable, covering the paper's "programs that produce
    information of a particular type".
    """

    block_id: str
    medium: Medium
    payload: Any = b""
    generator: bool = False

    def __post_init__(self) -> None:
        if not self.block_id:
            raise ValueError_("DataBlock requires a non-empty block_id")
        if not isinstance(self.medium, Medium):
            self.medium = Medium.from_name(self.medium)
        if self.generator and not callable(self.payload):
            raise MediaError(
                f"block {self.block_id!r} is marked as a generator but its "
                f"payload is not callable")

    def materialize(self) -> Any:
        """Return the concrete payload, running the generator if needed."""
        if self.generator:
            return self.payload()
        return self.payload

    @property
    def size_bytes(self) -> int:
        """Size of the concrete payload in bytes.

        Handles byte strings, text, and array payloads (anything with an
        ``nbytes`` attribute, i.e. numpy media data); other payload
        types report 0.
        """
        data = self.materialize()
        if isinstance(data, (bytes, bytearray)):
            return len(data)
        if isinstance(data, str):
            return len(data.encode("utf-8"))
        nbytes = getattr(data, "nbytes", None)
        if isinstance(nbytes, int):
            return nbytes
        return 0

    def checksum(self) -> str:
        """A content digest used by the transport packager for integrity."""
        data = self.materialize()
        if isinstance(data, str):
            data = data.encode("utf-8")
        if not isinstance(data, (bytes, bytearray)):
            data = repr(data).encode("utf-8")
        return hashlib.sha256(bytes(data)).hexdigest()


@dataclass
class DataDescriptor:
    """Attributes describing the semantics of one data block.

    ``attributes`` is deliberately open-ended (CMIF "makes only minimal
    assumptions about the types of attributes that can be defined").  The
    well-known keys the rest of the pipeline consults are:

    * ``duration`` (:class:`MediaTime`) — intrinsic presentation length,
    * ``format`` (str) — encoding name (the paper encourages embedding
      well-accepted external formats here),
    * ``resolution`` ((width, height)) — for visual media,
    * ``color-depth`` (int, bits) — for visual media,
    * ``frame-rate`` / ``sample-rate`` (float) — stream rates,
    * ``resources`` (dict) — resource requirements (bandwidth, memory),
    * ``keywords`` (tuple[str, ...]) — search keys for attribute-only
      retrieval (paper section 6).
    """

    descriptor_id: str
    medium: Medium
    block_id: str | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.descriptor_id:
            raise ValueError_("DataDescriptor requires a descriptor_id")
        if not isinstance(self.medium, Medium):
            self.medium = Medium.from_name(self.medium)

    def get(self, name: str, default: Any = None) -> Any:
        """Return attribute ``name`` or ``default``."""
        return self.attributes.get(name, default)

    @property
    def duration(self) -> MediaTime | None:
        """The intrinsic duration recorded by the capture tool, if any."""
        value = self.attributes.get("duration")
        if value is None:
            return None
        if isinstance(value, MediaTime):
            return value
        if isinstance(value, (int, float)):
            return MediaTime.ms(float(value))
        raise ValueError_(f"descriptor {self.descriptor_id!r} has a "
                          f"non-time duration attribute {value!r}")

    def duration_ms(self, timebase: TimeBase) -> float | None:
        """The intrinsic duration in canonical milliseconds, if any."""
        duration = self.duration
        return None if duration is None else timebase.to_ms(duration)

    def matches(self, **criteria: Any) -> bool:
        """True when every criterion equals the stored attribute value.

        ``medium`` may be given as a criterion and is checked against the
        descriptor's medium field; a tuple-valued stored attribute matches
        when it *contains* the criterion (so ``keywords="crime"`` matches
        a keyword list).
        """
        for name, wanted in criteria.items():
            if name == "medium":
                medium = (wanted if isinstance(wanted, Medium)
                          else Medium.from_name(wanted))
                if self.medium is not medium:
                    return False
                continue
            stored = self.attributes.get(name)
            if isinstance(stored, (tuple, list)) and not isinstance(
                    wanted, (tuple, list)):
                if wanted not in stored:
                    return False
            elif stored != wanted:
                return False
        return True


@dataclass
class Slice:
    """A restriction of a data block to a subsection (paper figure 7).

    Unifies the paper's three restriction attributes: ``slice`` for binary
    data, ``clip`` for sound fragments, and — held separately because it is
    spatial, not temporal — ``crop`` for images.  ``start``/``length`` are
    media times; a None length means "to the end of the block".
    """

    start: MediaTime = MediaTime.ms(0)
    length: MediaTime | None = None

    def __post_init__(self) -> None:
        if self.start.value < 0:
            raise MediaError(f"slice start must be non-negative, "
                             f"got {self.start!r}")
        if self.length is not None and self.length.value <= 0:
            raise MediaError(f"slice length must be positive, "
                             f"got {self.length!r}")

    def bounds_ms(self, timebase: TimeBase,
                  intrinsic_ms: float | None) -> tuple[float, float]:
        """Resolve to a concrete ``(start_ms, end_ms)`` pair.

        ``intrinsic_ms`` is the block's full duration; it bounds the slice
        and supplies the end when ``length`` is None.  A slice extending
        past the block is a :class:`MediaError` — atomic blocks cannot be
        extrapolated.
        """
        start = timebase.to_ms(self.start)
        if self.length is None:
            if intrinsic_ms is None:
                raise MediaError("open-ended slice on a block without an "
                                 "intrinsic duration")
            end = intrinsic_ms
        else:
            end = start + timebase.to_ms(self.length)
        if intrinsic_ms is not None and end > intrinsic_ms + 1e-6:
            raise MediaError(
                f"slice [{start}ms, {end}ms) extends past the block's "
                f"intrinsic duration {intrinsic_ms}ms")
        if end <= start:
            raise MediaError(f"slice is empty: [{start}ms, {end}ms)")
        return start, end


@dataclass
class EventDescriptor:
    """One presentation instance of a data block (paper section 3.1).

    Event descriptors are produced by compiling a document: each leaf node
    of the tree, together with its resolved (inherited, style-expanded)
    attributes, yields one event.  ``node_path`` is the root-relative path
    of the originating node, which doubles as the event's identity.
    """

    event_id: str
    node_path: str
    channel: str
    medium: Medium
    duration_ms: float
    descriptor: DataDescriptor | None = None
    slice_: Slice | None = None
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.duration_ms < 0:
            raise ValueError_(
                f"event {self.event_id!r} has negative duration "
                f"{self.duration_ms}ms")
        if not isinstance(self.medium, Medium):
            self.medium = Medium.from_name(self.medium)

    @property
    def shares_descriptor(self) -> bool:
        """True when this event references an external data descriptor."""
        return self.descriptor is not None

    def describe(self) -> str:
        """One-line summary used by the structure viewer."""
        source = (self.descriptor.descriptor_id if self.descriptor
                  else "<immediate>")
        return (f"{self.event_id} on {self.channel} "
                f"[{self.medium.value}] {self.duration_ms:g}ms <- {source}")
