"""Core CMIF document model: trees, attributes, channels, arcs, events.

This package implements the paper's primary contribution — the CMIF
document structure (sections 3 and 5).  The public names re-exported here
form the stable core API; the pipeline, timing, format, store and
transport packages are all built on top of these.
"""

from repro.core.attributes import (ALL_NODE_KINDS, Attribute, AttributeList,
                                   AttributeSpec, STANDARD_ATTRIBUTES,
                                   spec_for)
from repro.core.builder import DocumentBuilder
from repro.core.channels import (AURAL_MEDIA, Channel, ChannelDictionary,
                                 Medium, VISUAL_MEDIA)
from repro.core.descriptors import (DataBlock, DataDescriptor,
                                    EventDescriptor, Slice)
from repro.core.document import CmifDocument, CompiledDocument
from repro.core.edit import (EditReport, duplicate, remove, reorder,
                             retime, splice)
from repro.core.errors import (AttributeError_, ChannelError, CmifError,
                               DeviceConstraintError, FormatError,
                               MediaError, NavigationError, PathError,
                               PlaybackError, QueryError, SchedulingConflict,
                               StoreError, StructureError, StyleError,
                               SyncArcError, TransportError, ValueError_)
from repro.core.nodes import (ContainerNode, ExtNode, ImmNode, Node,
                              NodeKind, ParNode, SeqNode, make_node)
from repro.core.paths import node_path, relative_path, resolve_path
from repro.core.styles import StyleDictionary
from repro.core.syncarc import (Anchor, ConditionalArc, Strictness, SyncArc,
                                ZERO)
from repro.core.timebase import (DEFAULT_TIMEBASE, MediaTime, TIME_EPSILON_MS,
                                 TimeBase, Unit, times_close)
from repro.core.tree import (TreeStats, common_ancestor, find_named,
                             find_nodes, iter_leaves, iter_postorder,
                             iter_preorder, precedes, subtree_of,
                             tree_stats)
from repro.core.validate import (ERROR, ValidationIssue, WARNING,
                                 validate_document)
from repro.core.values import Rect, ValueKind

__all__ = [
    "ALL_NODE_KINDS", "AURAL_MEDIA", "Anchor", "Attribute", "AttributeError_",
    "AttributeList", "AttributeSpec", "Channel", "ChannelDictionary",
    "ChannelError", "CmifDocument", "CmifError", "CompiledDocument",
    "EditReport",
    "ConditionalArc", "ContainerNode", "DEFAULT_TIMEBASE", "DataBlock",
    "DataDescriptor", "DeviceConstraintError", "DocumentBuilder", "ERROR",
    "EventDescriptor", "ExtNode", "FormatError", "ImmNode", "MediaError",
    "MediaTime", "Medium", "NavigationError", "Node", "NodeKind", "ParNode",
    "PathError", "PlaybackError", "QueryError", "Rect", "STANDARD_ATTRIBUTES",
    "SchedulingConflict", "SeqNode", "Slice", "Strictness", "StoreError",
    "StructureError", "StyleDictionary", "StyleError", "SyncArc",
    "SyncArcError", "TIME_EPSILON_MS", "TimeBase", "TransportError",
    "TreeStats", "Unit", "VISUAL_MEDIA", "ValidationIssue", "ValueError_",
    "ValueKind", "WARNING", "ZERO", "common_ancestor", "find_named",
    "find_nodes", "iter_leaves", "iter_postorder", "iter_preorder",
    "duplicate", "make_node", "node_path", "precedes", "relative_path",
    "remove", "reorder", "resolve_path", "retime", "spec_for", "splice",
    "subtree_of", "times_close", "tree_stats", "validate_document",
]
