"""The store query planner: AST -> index-backed execution plans.

The seed implementation compiled every query to an opaque closure and
executed it by scanning all descriptors — O(N) per query, which defeats
the paper's section-6 promise that attribute search keys make "finding
detailed information in large multimedia database" cheap.  This module
compiles the :mod:`repro.store.query` AST into a :class:`Plan`:

* each indexable leaf becomes an :class:`IndexStep` producing a
  candidate id set from one inverted index (equality, keyword, medium,
  numeric range, duration);
* steps are intersected in **estimated-selectivity order** (smallest
  candidate set first), short-circuiting on an empty intersection;
* a step whose candidates would have to be *materialized* (a numeric or
  duration range slice) and whose estimate dwarfs the most selective
  step is **demoted**: its leaf predicate is verified per surviving
  candidate instead of building a huge set nobody narrows with;
* leaves no index can answer — ``NOT``, opaque closures, unhashable
  values, non-keyword containment — are collected into a **residual
  predicate** verified once per surviving candidate;
* a query with no indexable leaf at all falls back to the full scan,
  so planning never changes results, only cost.

Index steps whose candidate set may over-approximate (dirty entries:
string-valued keywords, unhashable attribute values, malformed
durations) are marked inexact and their leaf joins the residual — an
index is a superset source, never an oracle.  ``DataStore.explain``
returns the chosen :class:`Plan` so tests and the CLI can assert which
indexes a query actually uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, AbstractSet, Callable

from repro.kernel import resolve_kernel
from repro.store.query import (Always, And, Contains, DurationBetween, Eq,
                               MatchesAttr, MediumIs, Not, Or, Query, Range)

if TYPE_CHECKING:
    from repro.core.descriptors import DataDescriptor
    from repro.store.datastore import DataStore

#: A lazy (range) step this many times bigger than the most selective
#: step is demoted to per-candidate verification instead of being
#: materialized into a set.
DEMOTE_FACTOR = 4

#: Below this driver estimate the demotion threshold stops shrinking
#: (materializing a few dozen ids is cheaper than deciding not to).
DEMOTE_FLOOR = 64

#: Below this many ids in the *most selective* step, python set
#: intersection beats the sorted-rank-array form even with the arrays
#: cached — the numpy kernel only engages past it.
_NP_MIN_IDS = 64


@dataclass
class IndexStep:
    """One index probe of a plan: a candidate id set plus provenance.

    ``ids`` may be a live reference into the store's indexes — plans
    snapshot nothing and must be executed before the store mutates
    (which is what :meth:`DataStore.find_where` does).  Range probes
    are lazy: their set is only built if the step survives planning.
    """

    index: str                  # e.g. "eq[language]", "keyword", "medium"
    description: str            # the leaf this step answers
    estimate: int
    exact: bool                 # False: superset only, leaf re-verified
    leaf: Query
    materialized: AbstractSet[str] | None = None
    thunk: Callable[[], set[str]] | None = field(default=None, repr=False)

    @property
    def ids(self) -> AbstractSet[str]:
        if self.materialized is None:
            self.materialized = self.thunk()
        return self.materialized

    @property
    def lazy(self) -> bool:
        return self.materialized is None

    def describe(self) -> str:
        mark = "" if self.exact else " (superset, verified)"
        return f"{self.index} -> {self.estimate} candidate(s){mark}"


@dataclass(frozen=True)
class Plan:
    """A compiled query: index steps, residual predicate, or scan.

    A plan references live index state; execute it immediately (as
    :meth:`DataStore.find_where` does) — a plan held across store
    mutations is stale.
    """

    query_description: str
    steps: tuple[IndexStep, ...] = ()
    residual: Query | None = None
    scan: bool = False
    store_size: int = 0
    demoted: tuple[str, ...] = ()   # index names verified, not probed

    @property
    def indexes_used(self) -> tuple[str, ...]:
        """Names of the indexes the plan probes, in probe order."""
        return tuple(step.index for step in self.steps)

    @property
    def estimated_candidates(self) -> int:
        """Upper bound on descriptors the plan will examine."""
        if self.scan or not self.steps:
            return self.store_size
        return self.steps[0].estimate

    def describe(self) -> str:
        """A human-readable rendering for tests and the CLI."""
        lines = [f"plan for: {self.query_description}"]
        if self.scan:
            lines.append(f"  full scan over {self.store_size} "
                         f"descriptor(s)")
        else:
            for step in self.steps:
                lines.append(f"  probe {step.describe()}")
            lines.append(f"  examine <= {self.estimated_candidates} of "
                         f"{self.store_size} descriptor(s)")
        if self.residual is not None:
            lines.append(f"  verify residual: "
                         f"{self.residual.description}")
        return "\n".join(lines)


@dataclass
class _Subplan:
    """Intermediate planning result for one AST node."""

    steps: list[IndexStep] = field(default_factory=list)
    residuals: list[Query] = field(default_factory=list)
    matches_all: bool = False   # Always(): no constraint contributed


def build_plan(store: "DataStore", query: Query) -> Plan:
    """Compile ``query`` against ``store``'s current indexes."""
    if not isinstance(query, Query):
        raise TypeError(f"build_plan expects a Query, got {query!r}")
    subplan = _plan_node(store, query)
    size = store.index_size()
    if subplan is None:
        return Plan(query_description=query.description, residual=query,
                    scan=True, store_size=size)
    if subplan.matches_all or not subplan.steps:
        # Nothing narrows the candidate set: scanning with whatever
        # residual remains is the honest plan.
        residual = _conjoin(subplan.residuals) if subplan.residuals \
            else (None if subplan.matches_all else query)
        return Plan(query_description=query.description,
                    residual=residual, scan=True, store_size=size)
    ordered = sorted(subplan.steps, key=lambda s: s.estimate)
    threshold = DEMOTE_FACTOR * max(ordered[0].estimate, DEMOTE_FLOOR)
    kept: list[IndexStep] = []
    residuals = list(subplan.residuals)
    demoted: list[str] = []
    for position, step in enumerate(ordered):
        if position > 0 and step.lazy and step.estimate > threshold:
            # Building this set would cost more than verifying its
            # leaf on the (far smaller) surviving candidates.
            demoted.append(step.index)
            if step.exact:          # inexact leaves are already residual
                residuals.append(step.leaf)
            continue
        kept.append(step)
    return Plan(query_description=query.description, steps=tuple(kept),
                residual=_conjoin(residuals), store_size=size,
                demoted=tuple(demoted))


def _conjoin(parts: list[Query]) -> Query | None:
    deduplicated: list[Query] = []
    for part in parts:
        if all(part is not kept for kept in deduplicated):
            deduplicated.append(part)
    if not deduplicated:
        return None
    if len(deduplicated) == 1:
        return deduplicated[0]
    return And(tuple(deduplicated))


def _plan_node(store: "DataStore", node: Query) -> _Subplan | None:
    """Plan one AST node; None means no index applies at all."""
    if isinstance(node, Always):
        return _Subplan(matches_all=True)
    if isinstance(node, And):
        return _plan_and(store, node)
    if isinstance(node, Or):
        return _plan_or(store, node)
    step = _leaf_step(store, node)
    if step is None:
        return None
    subplan = _Subplan(steps=[step])
    if not step.exact:
        subplan.residuals.append(node)
    return subplan


def _plan_and(store: "DataStore", node: And) -> _Subplan | None:
    combined = _Subplan()
    indexable = False
    for part in node.parts:
        child = _plan_node(store, part)
        if child is None:
            combined.residuals.append(part)
            continue
        if child.matches_all:
            continue
        combined.steps.extend(child.steps)
        combined.residuals.extend(child.residuals)
        indexable = True
    if not indexable:
        return None if combined.residuals else _Subplan(matches_all=True)
    return combined


def _plan_or(store: "DataStore", node: Or) -> _Subplan | None:
    """A union step over the branches' candidate supersets.

    Sound only when *every* branch is indexable: one unindexable branch
    means the union could miss matches, so the whole OR degrades to a
    residual (and, at top level, a scan).
    """
    union: set[str] = set()
    exact = True
    for part in node.parts:
        child = _plan_node(store, part)
        if child is None:
            return None
        if child.matches_all:
            return _Subplan(matches_all=True)
        if not child.steps:
            return None
        union |= _intersect_steps(store, child.steps)
        if child.residuals or any(not s.exact for s in child.steps):
            exact = False
    step = IndexStep(index="union", description=node.description,
                     estimate=len(union), exact=exact, leaf=node,
                     materialized=union)
    subplan = _Subplan(steps=[step])
    if not exact:
        subplan.residuals.append(node)
    return subplan


def _intersect_steps(store: "DataStore", steps: list[IndexStep],
                     kernel=None) -> set[str]:
    """The steps' candidate intersection, smallest set first."""
    if not steps:
        return set()
    ordered = sorted(steps, key=lambda s: s.estimate)
    np = resolve_kernel(kernel).np
    if np is not None and len(ordered) > 1 \
            and len(ordered[0].ids) >= _NP_MIN_IDS:
        return set(store.ids_for_ranks(
            _intersect_ranks(store, ordered, np)))
    result = set(ordered[0].ids)
    for step in ordered[1:]:
        if not result:
            break
        result = result & step.ids
    return result


def _intersect_ranks(store: "DataStore", ordered: list[IndexStep], np):
    """Vectorized intersection over sorted insertion-rank arrays.

    Each step's id set becomes a sorted unique int64 rank array (cached
    on the store per set identity and version), so the intersection is
    ``np.intersect1d(assume_unique=True)`` merges — and the result is
    already in registration order, which is exactly the order
    :func:`execute_plan` must examine candidates in.
    """
    result = store.rank_array(ordered[0].ids, np)
    for step in ordered[1:]:
        if not result.size:
            break
        result = np.intersect1d(result, store.rank_array(step.ids, np),
                                assume_unique=True)
    return result


def _leaf_step(store: "DataStore", node: Query) -> IndexStep | None:
    if isinstance(node, Eq):
        answer = store.eq_candidates(node.name, node.value)
        if answer is None:
            return None
        ids, exact = answer
        return IndexStep(index=f"eq[{node.name}]",
                         description=node.description,
                         estimate=len(ids), exact=exact, leaf=node,
                         materialized=ids)
    if isinstance(node, Contains):
        if node.name != "keywords":
            return None         # containment is indexed for keywords only
        ids, exact = store.keyword_candidates(node.item)
        return IndexStep(index="keyword", description=node.description,
                         estimate=len(ids), exact=exact, leaf=node,
                         materialized=ids)
    if isinstance(node, MediumIs):
        ids = store.medium_candidates(node.medium)
        return IndexStep(index="medium", description=node.description,
                         estimate=len(ids), exact=True, leaf=node,
                         materialized=ids)
    if isinstance(node, Range):
        estimate, exact = store.numeric_estimate(node.name, node.minimum,
                                                 node.maximum)
        return IndexStep(
            index=f"range[{node.name}]", description=node.description,
            estimate=estimate, exact=exact, leaf=node,
            thunk=lambda: store.numeric_candidates(
                node.name, node.minimum, node.maximum))
    if isinstance(node, DurationBetween):
        answer = store.duration_estimate(node.min_ms, node.max_ms,
                                         node.timebase)
        if answer is None:
            return None
        estimate, exact = answer
        return IndexStep(
            index="duration", description=node.description,
            estimate=estimate, exact=exact, leaf=node,
            thunk=lambda: store.duration_candidates(
                node.min_ms, node.max_ms, node.timebase))
    if isinstance(node, MatchesAttr):
        answer = store.matches_candidates(node.name, node.wanted)
        if answer is None:
            return None
        ids, exact = answer
        return IndexStep(index=f"attr[{node.name}]",
                         description=node.description,
                         estimate=len(ids), exact=exact, leaf=node,
                         materialized=ids)
    # Not, opaque Query closures, and anything future: residual-only.
    return None


def execute_plan(store: "DataStore", plan: Plan,
                 kernel=None) -> list["DataDescriptor"]:
    """Run a plan, charging one attribute read per examined descriptor.

    ``kernel`` selects the set-intersection backend (the ``kernel=``
    axis, :mod:`repro.kernel`); the examined candidates, their order
    and the charged reads are identical under every kernel.
    """
    if plan.scan:
        residual = plan.residual
        if residual is None:
            return store.scan_where(lambda descriptor: True)
        return store.scan_where(residual)
    np = resolve_kernel(kernel).np
    steps = list(plan.steps)
    ordered = sorted(steps, key=lambda s: s.estimate)
    if np is not None and ordered \
            and len(ordered[0].ids) >= _NP_MIN_IDS:
        examined = store.ids_for_ranks(
            _intersect_ranks(store, ordered, np))
    else:
        examined = store.in_registration_order(
            _intersect_steps(store, steps, kernel=kernel))
    residual = plan.residual
    results: list["DataDescriptor"] = []
    for descriptor_id in examined:
        descriptor = store.descriptor_by_id(descriptor_id)
        store.stats.attribute_reads += 1
        if residual is not None and not residual(descriptor):
            continue
        results.append(descriptor)
    return results
