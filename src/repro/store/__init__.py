"""The optional DDBMS of paper figure 2: attribute-indexed block storage.

Documents reference data through descriptors; the store resolves those
references and answers attribute queries without touching payload bytes,
reproducing the paper's section-6 claim about descriptor-driven document
manipulation.  Queries are inspectable ASTs (:mod:`repro.store.query`)
compiled by a planner (:mod:`repro.store.planner`) into index-backed
plans; the federation (:mod:`repro.store.distributed`) routes them only
to the sites whose index summaries can match.
"""

from repro.store.datastore import DataStore, StoreStats, StoreSummary
from repro.store.distributed import (DESCRIPTOR_WIRE_BYTES, FederatedStore,
                                     FindOutcome, NetworkModel, Site,
                                     SiteUnavailable, TrafficStats,
                                     summary_can_match, summary_wire_bytes)
from repro.store.placement import (PLACEMENT_POLICIES, HotSetTracker,
                                   HybridPolicy, MigrateOwnerPolicy,
                                   PlacementMove, PlacementOutcome,
                                   PlacementPolicy, PlacementReport,
                                   ReplicateHotPolicy, ReplicationPlan,
                                   SiteTopology, resolve_policy)
from repro.store.planner import IndexStep, Plan, build_plan, execute_plan
from repro.store.query import (Always, And, Contains, DurationBetween, Eq,
                               MatchesAttr, MediumIs, Not, Or, Query, Range,
                               always, attr_contains, attr_eq, attr_range,
                               criteria_query, duration_between, iter_leaves,
                               keyword, medium_is, run)

__all__ = [
    "DESCRIPTOR_WIRE_BYTES", "PLACEMENT_POLICIES", "Always", "And",
    "Contains", "DataStore", "DurationBetween", "Eq", "FederatedStore",
    "FindOutcome", "HotSetTracker", "HybridPolicy", "IndexStep",
    "MatchesAttr", "MediumIs", "MigrateOwnerPolicy", "NetworkModel",
    "Not", "Or", "Plan", "PlacementMove", "PlacementOutcome",
    "PlacementPolicy", "PlacementReport", "Query", "Range",
    "ReplicateHotPolicy", "ReplicationPlan", "Site", "SiteTopology",
    "SiteUnavailable", "StoreStats", "StoreSummary", "TrafficStats",
    "always", "resolve_policy",
    "attr_contains", "attr_eq", "attr_range", "build_plan",
    "criteria_query", "duration_between", "execute_plan", "iter_leaves",
    "keyword", "medium_is", "run", "summary_can_match",
    "summary_wire_bytes",
]
