"""The optional DDBMS of paper figure 2: attribute-indexed block storage.

Documents reference data through descriptors; the store resolves those
references and answers attribute queries without touching payload bytes,
reproducing the paper's section-6 claim about descriptor-driven document
manipulation.
"""

from repro.store.datastore import DataStore, StoreStats
from repro.store.distributed import (DESCRIPTOR_WIRE_BYTES, FederatedStore,
                                     NetworkModel, Site, TrafficStats)
from repro.store.query import (Query, always, attr_contains, attr_eq,
                               attr_range, duration_between, keyword,
                               medium_is, run)

__all__ = [
    "DESCRIPTOR_WIRE_BYTES", "DataStore", "FederatedStore", "NetworkModel",
    "Query", "Site", "StoreStats", "TrafficStats", "always",
    "attr_contains", "attr_eq", "attr_range", "duration_between",
    "keyword", "medium_is", "run",
]
