"""Traffic-driven placement for the federation (ROADMAP item 1).

The paper's distributed store (section 6) leaves descriptors wherever
they were authored; Gray's *Locally Served Network Computers*
(PAPERS.md) argues the economics run the other way — serve from where
the traffic is.  This module turns the federation's traffic telemetry
into *action*:

* :class:`SiteTopology` — named sites joined by per-ordered-pair
  :class:`~repro.store.distributed.NetworkModel` links (asymmetric
  costs allowed), with ``star`` / ``chain`` / ``mesh`` constructors;
* :class:`HotSetTracker` — a bounded space-saving top-K sketch per
  origin site (Metwally et al.), so demand accounting stays O(K) no
  matter how many descriptors the federation holds;
* :class:`PlacementPolicy` and friends — cost-model-driven policies
  (``static`` / ``replicate-hot`` / ``migrate-owner`` / ``hybrid``)
  that turn a hot set into an explicit :class:`ReplicationPlan` of
  :class:`PlacementMove`\\ s, applied by
  :meth:`~repro.store.distributed.FederatedStore.apply_placement`.

Placement is a pure optimization: applying any plan may change *where*
reads are served from (and hence the simulated traffic bill), but never
*what* they return — ``find`` / ``descriptor`` / ``block_for`` results
stay bit-identical, which the placement tests and
``benchmarks/bench_placement.py`` pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.store.distributed import NetworkModel

#: A zero-cost link: a site reading its own store never touches the
#: simulated network.
LOCAL_LINK = NetworkModel(latency_ms=0.0,
                          bandwidth_bytes_per_ms=float("inf"))

#: Policy names accepted by :func:`resolve_policy` (CLI / bench axis).
PLACEMENT_POLICIES = ("static", "replicate-hot", "migrate-owner",
                     "hybrid")


class SiteTopology:
    """Named sites joined by directed, possibly asymmetric links.

    ``link(a, b)`` is the network model a request *from* ``a`` *to*
    ``b`` pays; ``link(a, a)`` is always :data:`LOCAL_LINK` (free).
    Unlisted pairs fall back to ``default``.
    """

    def __init__(self, sites, links=None, *,
                 default: NetworkModel | None = None) -> None:
        self.sites = tuple(sites)
        self._links: dict[tuple[str, str], NetworkModel] = \
            dict(links or {})
        self.default = default if default is not None else NetworkModel()

    def link(self, origin: str, target: str) -> NetworkModel:
        """The directed link model from ``origin`` to ``target``."""
        if origin == target:
            return LOCAL_LINK
        return self._links.get((origin, target), self.default)

    def transfer_ms(self, origin: str, target: str,
                    size_bytes: int) -> float:
        """Simulated time to move ``size_bytes`` from target to origin."""
        return self.link(origin, target).transfer_ms(size_bytes)

    # -- constructors ------------------------------------------------------

    @classmethod
    def star(cls, hub: str, edges, *,
             spoke: NetworkModel | None = None,
             uplink_factor: float = 1.0) -> "SiteTopology":
        """Hub-and-spoke: every edge reaches the hub over ``spoke``;
        edge-to-edge traffic pays both hops.  ``uplink_factor`` > 1
        makes edge→hub uploads slower than downloads (asymmetric DSL-
        style links)."""
        spoke = spoke if spoke is not None else NetworkModel()
        up = NetworkModel(
            latency_ms=spoke.latency_ms * uplink_factor,
            bandwidth_bytes_per_ms=(
                spoke.bandwidth_bytes_per_ms / uplink_factor))
        two_hop = NetworkModel(
            latency_ms=spoke.latency_ms + up.latency_ms,
            bandwidth_bytes_per_ms=min(spoke.bandwidth_bytes_per_ms,
                                       up.bandwidth_bytes_per_ms))
        links: dict[tuple[str, str], NetworkModel] = {}
        edges = tuple(edges)
        for edge in edges:
            links[(hub, edge)] = spoke       # hub pulls from an edge
            links[(edge, hub)] = up          # edge pulls from the hub
            for other in edges:
                if other != edge:
                    links[(edge, other)] = two_hop
        return cls((hub, *edges), links, default=two_hop)

    @classmethod
    def chain(cls, sites, *,
              hop: NetworkModel | None = None) -> "SiteTopology":
        """A linear chain: cost scales with hop distance."""
        hop = hop if hop is not None else NetworkModel()
        sites = tuple(sites)
        links: dict[tuple[str, str], NetworkModel] = {}
        for i, a in enumerate(sites):
            for j, b in enumerate(sites):
                if i == j:
                    continue
                hops = abs(i - j)
                links[(a, b)] = NetworkModel(
                    latency_ms=hop.latency_ms * hops,
                    bandwidth_bytes_per_ms=hop.bandwidth_bytes_per_ms)
        return cls(sites, links, default=hop)

    @classmethod
    def mesh(cls, sites, *, base: NetworkModel | None = None,
             seed: int = 0) -> "SiteTopology":
        """A full mesh with seeded, deterministic per-direction jitter —
        the asymmetric-link case (a→b and b→a differ)."""
        import random
        base = base if base is not None else NetworkModel()
        rng = random.Random(seed)
        sites = tuple(sites)
        links: dict[tuple[str, str], NetworkModel] = {}
        for a in sites:
            for b in sites:
                if a == b:
                    continue
                jitter = 0.5 + rng.random()      # 0.5x .. 1.5x
                links[(a, b)] = NetworkModel(
                    latency_ms=base.latency_ms * jitter,
                    bandwidth_bytes_per_ms=(
                        base.bandwidth_bytes_per_ms / jitter))
        return cls(sites, links, default=base)


@dataclass
class HotEntry:
    """One counter of the space-saving sketch.

    ``error`` bounds the overestimate inherited when the counter was
    recycled from an evicted id: the true request count is at least
    ``requests - error``.
    """

    descriptor_id: str
    requests: int = 0
    payload_bytes: int = 0
    error: int = 0


class HotSetTracker:
    """Space-saving top-K demand sketch, one sketch per origin site.

    ``record`` is O(1) amortized (O(K) worst case on eviction) and the
    whole tracker is O(origins × K) space regardless of how many
    distinct descriptors flow through — the property that keeps
    placement viable at million-descriptor scale.  Counters weight by
    both request count and payload bytes; policies rank by the byte
    volume a placement move could actually save.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError("tracker capacity must be >= 1")
        self.capacity = capacity
        self._sketches: dict[str, dict[str, HotEntry]] = {}

    def record(self, origin: str, descriptor_id: str,
               payload_bytes: int = 0) -> None:
        """Note one read of ``descriptor_id`` issued from ``origin``."""
        sketch = self._sketches.setdefault(origin, {})
        entry = sketch.get(descriptor_id)
        if entry is not None:
            entry.requests += 1
            entry.payload_bytes += payload_bytes
            return
        if len(sketch) < self.capacity:
            sketch[descriptor_id] = HotEntry(
                descriptor_id, requests=1, payload_bytes=payload_bytes)
            return
        # Space-saving eviction: recycle the minimum counter, the new
        # id inherits its counts as the overestimate bound.
        victim = min(sketch.values(),
                     key=lambda e: (e.requests, e.payload_bytes,
                                    e.descriptor_id))
        del sketch[victim.descriptor_id]
        sketch[descriptor_id] = HotEntry(
            descriptor_id,
            requests=victim.requests + 1,
            payload_bytes=victim.payload_bytes + payload_bytes,
            error=victim.requests)

    def hot_set(self, origin: str) -> list[HotEntry]:
        """The origin's hot entries, heaviest (by bytes) first."""
        sketch = self._sketches.get(origin, {})
        return sorted(sketch.values(),
                      key=lambda e: (-e.payload_bytes, -e.requests,
                                     e.descriptor_id))

    def origins(self) -> list[str]:
        """Every origin the tracker has seen, sorted."""
        return sorted(self._sketches)

    def demand(self, descriptor_id: str) -> dict[str, HotEntry]:
        """Per-origin entries for one id (origins that still track it)."""
        out: dict[str, HotEntry] = {}
        for origin, sketch in self._sketches.items():
            entry = sketch.get(descriptor_id)
            if entry is not None:
                out[origin] = entry
        return out

    def reset(self) -> None:
        self._sketches.clear()


@dataclass(frozen=True)
class PlacementMove:
    """Copy (``replicate``) or move (``migrate``) one descriptor and
    its payload block from ``source`` to ``target``."""

    descriptor_id: str
    source: str
    target: str
    action: str = "replicate"            # "replicate" | "migrate"
    payload_bytes: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("replicate", "migrate"):
            raise ValueError(f"unknown placement action {self.action!r}")


@dataclass
class ReplicationPlan:
    """An explicit, inspectable batch of placement moves."""

    policy: str
    moves: tuple[PlacementMove, ...] = ()
    projected_saving_ms: float = 0.0
    move_cost_ms: float = 0.0

    @property
    def empty(self) -> bool:
        return not self.moves

    def describe(self) -> str:
        lines = [f"plan[{self.policy}]: {len(self.moves)} move(s), "
                 f"projected saving {self.projected_saving_ms:.1f} ms, "
                 f"move cost {self.move_cost_ms:.1f} ms"]
        for move in self.moves:
            lines.append(
                f"  {move.action:<9} {move.descriptor_id} "
                f"{move.source} -> {move.target} "
                f"({move.payload_bytes} B)")
        return "\n".join(lines)


class PlacementPolicy:
    """Base policy: ``static`` — never move anything.

    Subclasses override :meth:`plan`.  All policies are pure functions
    of the federation's current holdings, its topology and the hot-set
    tracker: planning inspects, only
    :meth:`FederatedStore.apply_placement` mutates.
    """

    name = "static"

    #: A move must project at least this multiple of its own transfer
    #: cost in savings before it is worth scheduling.
    promote_factor = 2.0

    def plan(self, federation) -> ReplicationPlan:
        return ReplicationPlan(policy=self.name)

    # -- shared cost-model helpers ----------------------------------------

    def _payload_size(self, federation, descriptor_id: str,
                      entry_bytes: int, requests: int) -> int:
        """True block size when a holder knows it, else the observed
        mean transfer size from the sketch."""
        for name in federation.holders(descriptor_id):
            store = federation.site(name).store
            descriptor = store.descriptor(descriptor_id)
            if descriptor.block_id is not None:
                return store.block_for(descriptor_id).size_bytes
            return 0
        return entry_bytes // max(requests, 1)

    def _serve_cost_ms(self, federation, origin: str,
                       descriptor_id: str, size: int) -> tuple[float, str]:
        """(cost, holder) of the cheapest current replica for origin."""
        topology = federation.topology
        best: tuple[float, str] | None = None
        for holder in federation.holders(descriptor_id):
            cost = topology.transfer_ms(origin, holder, size)
            if best is None or (cost, holder) < best:
                best = (cost, holder)
        if best is None:
            return float("inf"), ""
        return best

    def _move(self, federation, descriptor_id: str, target: str,
              action: str, size: int) -> tuple[PlacementMove, float]:
        """Build a move from the holder nearest to ``target``."""
        topology = federation.topology
        cost, source = min(
            (topology.transfer_ms(target, holder, size), holder)
            for holder in federation.holders(descriptor_id))
        move = PlacementMove(descriptor_id, source, target,
                             action=action, payload_bytes=size)
        return move, cost

    def _demand_table(self, federation):
        """id -> {origin: HotEntry} across every tracked origin."""
        tracker = federation.hot_tracker
        table: dict[str, dict[str, HotEntry]] = {}
        for origin in tracker.origins():
            for entry in tracker.hot_set(origin):
                table.setdefault(entry.descriptor_id, {})[origin] = entry
        return table


class ReplicateHotPolicy(PlacementPolicy):
    """Copy each origin's hot descriptors next to that origin whenever
    the projected steady-state saving clears the transfer cost."""

    name = "replicate-hot"

    def plan(self, federation) -> ReplicationPlan:
        moves: list[PlacementMove] = []
        saving_total = 0.0
        cost_total = 0.0
        planned: set[tuple[str, str]] = set()
        tracker = federation.hot_tracker
        for origin in tracker.origins():
            for entry in tracker.hot_set(origin):
                did = entry.descriptor_id
                if (did, origin) in planned:
                    continue
                holders = federation.holders(did)
                if not holders or origin in holders:
                    continue
                size = self._payload_size(federation, did,
                                          entry.payload_bytes,
                                          entry.requests)
                serve_ms, _ = self._serve_cost_ms(
                    federation, origin, did, size)
                projected = entry.requests * serve_ms
                move, move_ms = self._move(federation, did, origin,
                                           "replicate", size)
                if projected < self.promote_factor * move_ms:
                    continue
                planned.add((did, origin))
                moves.append(move)
                saving_total += projected
                cost_total += move_ms
        return ReplicationPlan(self.name, tuple(moves),
                               projected_saving_ms=saving_total,
                               move_cost_ms=cost_total)


class MigrateOwnerPolicy(PlacementPolicy):
    """Move each descriptor to the single origin that dominates its
    demand (no extra copies — the storage-frugal policy)."""

    name = "migrate-owner"

    def plan(self, federation) -> ReplicationPlan:
        moves: list[PlacementMove] = []
        saving_total = 0.0
        cost_total = 0.0
        topology = federation.topology
        for did, per_origin in sorted(self._demand_table(
                federation).items()):
            holders = federation.holders(did)
            if not holders:
                continue
            dominant = min(
                per_origin,
                key=lambda o: (-per_origin[o].payload_bytes,
                               -per_origin[o].requests, o))
            if dominant in holders:
                continue
            entry = per_origin[dominant]
            size = self._payload_size(federation, did,
                                      entry.payload_bytes,
                                      entry.requests)
            # Total bill across every tracked origin, before vs after.
            before = after = 0.0
            for origin, origin_entry in per_origin.items():
                serve_ms, _ = self._serve_cost_ms(
                    federation, origin, did, size)
                before += origin_entry.requests * serve_ms
                after += origin_entry.requests * topology.transfer_ms(
                    origin, dominant, size)
            move, move_ms = self._move(federation, did, dominant,
                                       "migrate", size)
            if before - after < self.promote_factor * move_ms:
                continue
            moves.append(move)
            saving_total += before - after
            cost_total += move_ms
        return ReplicationPlan(self.name, tuple(moves),
                               projected_saving_ms=saving_total,
                               move_cost_ms=cost_total)


class HybridPolicy(PlacementPolicy):
    """Migrate when one origin dominates a descriptor's demand,
    replicate to every origin with a meaningful share otherwise."""

    name = "hybrid"
    #: Demand share above which a single origin takes sole ownership.
    dominance = 0.6
    #: Minimum share an origin needs to earn its own replica.
    share = 0.15

    def plan(self, federation) -> ReplicationPlan:
        moves: list[PlacementMove] = []
        saving_total = 0.0
        cost_total = 0.0
        for did, per_origin in sorted(self._demand_table(
                federation).items()):
            holders = federation.holders(did)
            if not holders:
                continue
            total_bytes = sum(e.payload_bytes
                              for e in per_origin.values())
            if total_bytes <= 0:
                continue
            dominant = min(
                per_origin,
                key=lambda o: (-per_origin[o].payload_bytes,
                               -per_origin[o].requests, o))
            dominant_share = (per_origin[dominant].payload_bytes
                              / total_bytes)
            if dominant_share >= self.dominance:
                targets = [(dominant, "migrate")]
            else:
                targets = [(origin, "replicate")
                           for origin in sorted(per_origin)
                           if per_origin[origin].payload_bytes
                           / total_bytes >= self.share]
            for target, action in targets:
                if target in holders:
                    continue
                entry = per_origin[target]
                size = self._payload_size(federation, did,
                                          entry.payload_bytes,
                                          entry.requests)
                serve_ms, _ = self._serve_cost_ms(
                    federation, target, did, size)
                projected = entry.requests * serve_ms
                move, move_ms = self._move(federation, did, target,
                                           action, size)
                if projected < self.promote_factor * move_ms:
                    continue
                moves.append(move)
                saving_total += projected
                cost_total += move_ms
                if action == "migrate":
                    break       # sole owner moved; nothing to replicate
        return ReplicationPlan(self.name, tuple(moves),
                               projected_saving_ms=saving_total,
                               move_cost_ms=cost_total)


def resolve_policy(spec) -> PlacementPolicy:
    """A policy instance from a name (CLI / bench axis) or instance."""
    if isinstance(spec, PlacementPolicy):
        return spec
    policies = {
        "static": PlacementPolicy,
        "replicate-hot": ReplicateHotPolicy,
        "migrate-owner": MigrateOwnerPolicy,
        "hybrid": HybridPolicy,
    }
    try:
        return policies[spec]()
    except KeyError:
        raise ValueError(
            f"unknown placement policy {spec!r}; expected one of "
            f"{', '.join(PLACEMENT_POLICIES)}") from None


@dataclass
class PlacementOutcome:
    """What :meth:`FederatedStore.apply_placement` actually did."""

    applied: int = 0
    skipped: int = 0
    bytes_moved: int = 0
    simulated_ms: float = 0.0
    moves: tuple[PlacementMove, ...] = ()


@dataclass
class PlacementSiteReport:
    """One site's physical footprint (satellite: byte accounting)."""

    site: str
    descriptor_count: int = 0
    payload_bytes: int = 0
    file_ids: tuple[str, ...] = ()


@dataclass
class PlacementReport:
    """Per-site footprints plus the federation's replica histogram."""

    sites: dict[str, PlacementSiteReport] = field(default_factory=dict)
    #: replication factor -> number of descriptor ids at that factor.
    replica_histogram: dict[int, int] = field(default_factory=dict)

    def __getitem__(self, site: str) -> tuple[str, ...]:
        """Back-compat: ``report[site]`` is that site's file ids."""
        return self.sites[site].file_ids

    @property
    def total_replicas(self) -> int:
        return sum(factor * count for factor, count
                   in self.replica_histogram.items())

    def describe(self) -> str:
        lines = ["placement:"]
        for name in sorted(self.sites):
            entry = self.sites[name]
            lines.append(
                f"  {name:<12} {entry.descriptor_count:>6} descriptor(s)"
                f"  {entry.payload_bytes:>10} payload B")
        for factor in sorted(self.replica_histogram):
            lines.append(f"  x{factor} replication: "
                         f"{self.replica_histogram[factor]} id(s)")
        return "\n".join(lines)
