"""The attribute-indexed data block store (paper figure 2's DDBMS).

"A database management system may be used to locate and access various
data blocks based on the attributes in the data descriptors."  This
module is that optional component: an in-memory store mapping descriptor
ids to (descriptor, block) pairs with inverted indexes over keyword and
medium attributes.

The store instruments itself: ``payload_reads`` counts every access to
actual block payloads and ``attribute_reads`` every descriptor access.
The section-6 experiment ("much of the work associated with manipulating
a document can be based on relatively small clusters of data (the
attributes) rather than the often massive amounts of media-based data
itself") is reproduced by showing searches complete with
``payload_reads == 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import StoreError


@dataclass
class StoreStats:
    """Access counters used by the attribute-manipulation experiments."""

    attribute_reads: int = 0
    payload_reads: int = 0
    payload_bytes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.attribute_reads = 0
        self.payload_reads = 0
        self.payload_bytes = 0


class DataStore:
    """In-memory DDBMS: descriptors indexed by id, keyword and medium."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        self._descriptors: dict[str, DataDescriptor] = {}
        self._blocks: dict[str, DataBlock] = {}
        self._keyword_index: dict[str, set[str]] = {}
        self._medium_index: dict[Medium, set[str]] = {}
        self.stats = StoreStats()

    # -- registration -----------------------------------------------------

    def register(self, descriptor: DataDescriptor,
                 block: DataBlock | None = None) -> None:
        """Add a descriptor (and optionally its block) to the store."""
        if descriptor.descriptor_id in self._descriptors:
            raise StoreError(
                f"descriptor {descriptor.descriptor_id!r} registered twice")
        self._descriptors[descriptor.descriptor_id] = descriptor
        if block is not None:
            if descriptor.block_id not in (None, block.block_id):
                raise StoreError(
                    f"descriptor {descriptor.descriptor_id!r} names block "
                    f"{descriptor.block_id!r} but {block.block_id!r} was "
                    f"supplied")
            self._blocks[block.block_id] = block
        for keyword in descriptor.get("keywords", ()):
            self._keyword_index.setdefault(str(keyword), set()).add(
                descriptor.descriptor_id)
        self._medium_index.setdefault(descriptor.medium, set()).add(
            descriptor.descriptor_id)

    def register_pair(self, pair: tuple[DataBlock, DataDescriptor]) -> None:
        """Register a (block, descriptor) pair from a media generator."""
        block, descriptor = pair
        self.register(descriptor, block)

    # -- lookup -------------------------------------------------------------

    def descriptor(self, descriptor_id: str) -> DataDescriptor:
        """Fetch a descriptor by id (counts as an attribute read)."""
        self.stats.attribute_reads += 1
        found = self._descriptors.get(descriptor_id)
        if found is None:
            raise StoreError(f"no descriptor {descriptor_id!r} in store "
                             f"{self.name!r}")
        return found

    def block_for(self, descriptor_id: str) -> DataBlock:
        """Fetch the payload block behind a descriptor (a payload read)."""
        descriptor = self.descriptor(descriptor_id)
        if descriptor.block_id is None:
            raise StoreError(
                f"descriptor {descriptor_id!r} references no block")
        block = self._blocks.get(descriptor.block_id)
        if block is None:
            raise StoreError(
                f"block {descriptor.block_id!r} is not stored (descriptor "
                f"travelled without its data)")
        self.stats.payload_reads += 1
        self.stats.payload_bytes += block.size_bytes
        return block

    def has_block(self, block_id: str) -> bool:
        """True when the block's payload is present locally."""
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._descriptors)

    def __contains__(self, descriptor_id: str) -> bool:
        return descriptor_id in self._descriptors

    def descriptors(self) -> Iterator[DataDescriptor]:
        """All descriptors (each counted as an attribute read)."""
        for descriptor in self._descriptors.values():
            self.stats.attribute_reads += 1
            yield descriptor

    def blocks(self) -> Iterator[DataBlock]:
        """All stored blocks (payload reads; used by the packager)."""
        for block in self._blocks.values():
            self.stats.payload_reads += 1
            self.stats.payload_bytes += block.size_bytes
            yield block

    # -- attribute search -----------------------------------------------------

    def find(self, **criteria: Any) -> list[DataDescriptor]:
        """Attribute search; uses the keyword/medium indexes when possible.

        ``keywords="crime"`` and ``medium="video"`` consult inverted
        indexes; any remaining criteria are checked by descriptor
        matching.  Payloads are never touched.
        """
        candidate_ids: set[str] | None = None
        keyword = criteria.get("keywords")
        if isinstance(keyword, str):
            candidate_ids = set(self._keyword_index.get(keyword, set()))
        medium = criteria.get("medium")
        if medium is not None:
            medium_key = (medium if isinstance(medium, Medium)
                          else Medium.from_name(medium))
            medium_ids = self._medium_index.get(medium_key, set())
            candidate_ids = (set(medium_ids) if candidate_ids is None
                             else candidate_ids & medium_ids)
        if candidate_ids is None:
            candidates: list[DataDescriptor] = list(
                self._descriptors.values())
        else:
            candidates = [self._descriptors[i] for i in sorted(candidate_ids)]
        results = []
        for descriptor in candidates:
            self.stats.attribute_reads += 1
            if descriptor.matches(**criteria):
                results.append(descriptor)
        return results

    def find_where(self, predicate: Callable[[DataDescriptor], bool]
                   ) -> list[DataDescriptor]:
        """Full-scan attribute search with an arbitrary predicate."""
        results = []
        for descriptor in self._descriptors.values():
            self.stats.attribute_reads += 1
            if predicate(descriptor):
                results.append(descriptor)
        return results

    # -- document integration ---------------------------------------------------

    def resolver(self) -> Callable[[str], DataDescriptor | None]:
        """A resolver suitable for :meth:`CmifDocument.attach_resolver`.

        Document ``file`` attributes name descriptors; unknown names
        resolve to None so validation can warn rather than fail.
        """
        def resolve(file_id: str) -> DataDescriptor | None:
            self.stats.attribute_reads += 1
            return self._descriptors.get(file_id)
        return resolve

    def total_payload_bytes(self) -> int:
        """Total stored payload size (materializes generator blocks)."""
        return sum(block.size_bytes for block in self._blocks.values())
