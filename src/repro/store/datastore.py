"""The attribute-indexed data block store (paper figure 2's DDBMS).

"A database management system may be used to locate and access various
data blocks based on the attributes in the data descriptors."  This
module is that optional component: an in-memory store mapping descriptor
ids to (descriptor, block) pairs with inverted indexes over the
attributes:

* a **keyword index** (member -> descriptor ids) for containment
  queries over the section-6 search keys;
* a **medium index** (Medium -> descriptor ids);
* **per-attribute equality indexes** (value -> descriptor ids) for any
  hashable attribute value;
* **sorted numeric indexes** (bisect-maintained ``(value, id)`` lists)
  for range queries, plus one over canonical-ms durations.

All indexes are maintained incrementally by :meth:`register`,
:meth:`unregister` and :meth:`update_attributes`.  Values the indexes
cannot represent exactly (unhashable attribute values, string-valued
keyword attributes with substring semantics, malformed durations) land
in per-index *dirty sets*, so the planner can still use an index as a
candidate superset and re-verify — index answers are never allowed to
drop a descriptor a full scan would have found.

The store instruments itself: ``payload_reads`` counts every access to
actual block payloads and ``attribute_reads`` every descriptor access —
**once per examined descriptor**, whether the descriptor came from an
index probe or a scan.  The section-6 experiment ("much of the work
associated with manipulating a document can be based on relatively
small clusters of data (the attributes) rather than the often massive
amounts of media-based data itself") is reproduced by showing searches
complete with ``payload_reads == 0``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from operator import itemgetter
from typing import Any, Callable, Iterator

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import StoreError, ValueError_
from repro.core.timebase import TimeBase

#: Entries the sorted-rank-array cache may hold before it is cleared
#: wholesale; each entry pins the index set it mirrors, so the cap also
#: bounds how long dead (replaced) sets can linger.
_RANK_CACHE_CAP = 512


@dataclass
class StoreStats:
    """Access counters used by the attribute-manipulation experiments."""

    attribute_reads: int = 0
    payload_reads: int = 0
    payload_bytes: int = 0

    def reset(self) -> None:
        """Zero all counters."""
        self.attribute_reads = 0
        self.payload_reads = 0
        self.payload_bytes = 0


@dataclass(frozen=True)
class StoreSummary:
    """A cheap, transferable summary of one store's index contents.

    The federation uses summaries to decide which sites a query could
    possibly match before paying any per-site request (Gray's
    locally-served principle: answer from local knowledge, touch remote
    sites only when they can actually contribute).  ``fuzzy_keywords``
    is True when the store holds keyword attributes the index cannot
    enumerate (string-valued, substring semantics) — such a site can
    never be pruned on keywords.
    """

    version: int
    count: int
    keywords: frozenset
    media: frozenset
    attribute_keys: frozenset
    fuzzy_keywords: bool = False


def _hashable(value: Any) -> bool:
    try:
        hash(value)
    except TypeError:
        return False
    return True


class DataStore:
    """In-memory DDBMS: descriptors under equality/keyword/medium/range
    inverted indexes, queried through :mod:`repro.store.planner`."""

    def __init__(self, name: str = "store", *,
                 timebase: TimeBase | None = None) -> None:
        self.name = name
        self.timebase = timebase or TimeBase()
        self._descriptors: dict[str, DataDescriptor] = {}
        self._blocks: dict[str, DataBlock] = {}
        # keyword member -> ids; members are indexed by raw (hashable)
        # value so numeric keywords keep dict-equality semantics.
        self._keyword_index: dict[Any, set[str]] = {}
        #: ids whose ``keywords`` attribute the index cannot enumerate
        #: (a plain string — substring containment — or unhashable
        #: members); always added to keyword candidate supersets.
        self._keyword_dirty: set[str] = set()
        self._medium_index: dict[Medium, set[str]] = {}
        # attribute name -> value -> ids (hashable values only).
        self._eq_index: dict[str, dict[Any, set[str]]] = {}
        #: attribute name -> ids whose value for it is unhashable.
        self._eq_dirty: dict[str, set[str]] = {}
        # attribute name -> sorted [(numeric value, id)] for bisect.
        self._numeric_index: dict[str, list[tuple[float, str]]] = {}
        #: attribute name -> ids whose numeric value is NaN (unordered,
        #: would corrupt the bisect invariant — yet NaN passes every
        #: Range check, so these ids join every range superset).
        self._numeric_dirty: dict[str, set[str]] = {}
        #: block id -> number of registered descriptors referencing it.
        self._block_refs: dict[str, int] = {}
        # sorted [(canonical duration ms, id)].
        self._duration_index: list[tuple[float, str]] = []
        #: ids whose duration attribute cannot be converted to ms.
        self._duration_dirty: set[str] = set()
        #: attribute names that ever held a tuple/list value — needed to
        #: decide when an equality index is a safe superset for
        #: ``matches``-style (containment-capable) criteria.  Grows
        #: monotonically; staying conservative is always safe.
        self._sequence_attrs: set[str] = set()
        #: registration rank per id — planned queries return results in
        #: registration order, exactly like a scan would.
        self._insertion_rank: dict[str, int] = {}
        self._rank_to_id: dict[int, str] = {}
        #: id(index set) -> (version, set, sorted int64 rank array); the
        #: numpy kernel's sorted-array form of live index sets, rebuilt
        #: on any version mismatch (see :meth:`rank_array`).
        self._rank_cache: dict[int, tuple] = {}
        self._next_rank = 0
        #: bumped on every mutation; keys summary caches and lets the
        #: federation detect stale site summaries.
        self.version = 0
        self._summary: StoreSummary | None = None
        self.stats = StoreStats()

    # -- registration -----------------------------------------------------

    def register(self, descriptor: DataDescriptor,
                 block: DataBlock | None = None) -> None:
        """Add a descriptor (and optionally its block) to the store."""
        if descriptor.descriptor_id in self._descriptors:
            raise StoreError(
                f"descriptor {descriptor.descriptor_id!r} registered twice")
        if block is not None:
            if descriptor.block_id not in (None, block.block_id):
                raise StoreError(
                    f"descriptor {descriptor.descriptor_id!r} names block "
                    f"{descriptor.block_id!r} but {block.block_id!r} was "
                    f"supplied")
            self._blocks[block.block_id] = block
        if descriptor.block_id is not None:
            self._block_refs[descriptor.block_id] = \
                self._block_refs.get(descriptor.block_id, 0) + 1
        self._descriptors[descriptor.descriptor_id] = descriptor
        self._insertion_rank[descriptor.descriptor_id] = self._next_rank
        self._rank_to_id[self._next_rank] = descriptor.descriptor_id
        self._next_rank += 1
        self._medium_index.setdefault(descriptor.medium, set()).add(
            descriptor.descriptor_id)
        self._index_attributes(descriptor)
        self._touch()

    def register_pair(self, pair: tuple[DataBlock, DataDescriptor]) -> None:
        """Register a (block, descriptor) pair from a media generator."""
        block, descriptor = pair
        self.register(descriptor, block)

    def unregister(self, descriptor_id: str) -> DataDescriptor:
        """Remove a descriptor (and its now-orphaned block, if any).

        Every index entry for the descriptor is withdrawn; the block is
        kept while any other descriptor still references it (figure-2
        sharing: several descriptors may describe one block).
        """
        descriptor = self._descriptors.get(descriptor_id)
        if descriptor is None:
            raise StoreError(f"no descriptor {descriptor_id!r} in store "
                             f"{self.name!r}")
        self._unindex_attributes(descriptor)
        ids = self._medium_index.get(descriptor.medium)
        if ids is not None:
            ids.discard(descriptor_id)
            if not ids:
                del self._medium_index[descriptor.medium]
        del self._descriptors[descriptor_id]
        del self._rank_to_id[self._insertion_rank[descriptor_id]]
        del self._insertion_rank[descriptor_id]
        if descriptor.block_id is not None:
            remaining = self._block_refs.get(descriptor.block_id, 0) - 1
            if remaining > 0:
                self._block_refs[descriptor.block_id] = remaining
            else:
                self._block_refs.pop(descriptor.block_id, None)
                self._blocks.pop(descriptor.block_id, None)
        self._touch()
        return descriptor

    def update_attributes(self, descriptor_id: str,
                          **changes: Any) -> DataDescriptor:
        """Change a descriptor's attributes, keeping indexes consistent.

        A value of ``None`` removes the attribute (an absent attribute
        reads back as ``None`` anyway).  The medium is a descriptor
        field, not an attribute, and cannot be changed here.
        """
        descriptor = self._descriptors.get(descriptor_id)
        if descriptor is None:
            raise StoreError(f"no descriptor {descriptor_id!r} in store "
                             f"{self.name!r}")
        if "medium" in changes:
            raise StoreError("medium is not an attribute; re-register the "
                             "descriptor to change it")
        self._unindex_attributes(descriptor)
        for name, value in changes.items():
            if value is None:
                descriptor.attributes.pop(name, None)
            else:
                descriptor.attributes[name] = value
        self._index_attributes(descriptor)
        self._touch()
        return descriptor

    # -- index maintenance -------------------------------------------------

    def _touch(self) -> None:
        self.version += 1
        self._summary = None

    def _index_attributes(self, descriptor: DataDescriptor) -> None:
        did = descriptor.descriptor_id
        for name, value in descriptor.attributes.items():
            if isinstance(value, (tuple, list)):
                self._sequence_attrs.add(name)
            if _hashable(value):
                self._eq_index.setdefault(name, {}).setdefault(
                    value, set()).add(did)
            else:
                self._eq_dirty.setdefault(name, set()).add(did)
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                if value != value:          # NaN: unsortable, matches
                    self._numeric_dirty.setdefault(name, set()).add(did)
                else:
                    bisect.insort(self._numeric_index.setdefault(name, []),
                                  (value, did))
        keywords = descriptor.get("keywords")
        if keywords is not None:
            if isinstance(keywords, (tuple, list, set, frozenset)):
                for member in keywords:
                    if _hashable(member):
                        self._keyword_index.setdefault(
                            member, set()).add(did)
                    else:
                        self._keyword_dirty.add(did)
            else:
                # A plain string has substring containment semantics
                # (or some other unenumerable container): unindexable.
                self._keyword_dirty.add(did)
        try:
            duration = descriptor.duration
        except ValueError_:
            self._duration_dirty.add(did)
        else:
            if duration is not None:
                bisect.insort(self._duration_index,
                              (self.timebase.to_ms(duration), did))

    def _unindex_attributes(self, descriptor: DataDescriptor) -> None:
        did = descriptor.descriptor_id
        for name, value in descriptor.attributes.items():
            if _hashable(value):
                buckets = self._eq_index.get(name)
                if buckets is not None:
                    ids = buckets.get(value)
                    if ids is not None:
                        ids.discard(did)
                        if not ids:
                            del buckets[value]
                    if not buckets:
                        del self._eq_index[name]
            else:
                dirty = self._eq_dirty.get(name)
                if dirty is not None:
                    dirty.discard(did)
                    if not dirty:
                        del self._eq_dirty[name]
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                if value != value:
                    dirty = self._numeric_dirty.get(name)
                    if dirty is not None:
                        dirty.discard(did)
                        if not dirty:
                            del self._numeric_dirty[name]
                else:
                    self._numeric_remove(name, value, did)
        keywords = descriptor.get("keywords")
        if keywords is not None \
                and isinstance(keywords, (tuple, list, set, frozenset)):
            for member in keywords:
                if _hashable(member):
                    ids = self._keyword_index.get(member)
                    if ids is not None:
                        ids.discard(did)
                        if not ids:
                            del self._keyword_index[member]
        self._keyword_dirty.discard(did)
        self._duration_dirty.discard(did)
        try:
            duration = descriptor.duration
        except ValueError_:
            duration = None
        if duration is not None:
            self._sorted_remove(self._duration_index,
                               (self.timebase.to_ms(duration), did))

    def _numeric_remove(self, name: str, value: float, did: str) -> None:
        entries = self._numeric_index.get(name)
        if entries is None:
            return
        self._sorted_remove(entries, (value, did))
        if not entries:
            del self._numeric_index[name]

    @staticmethod
    def _sorted_remove(entries: list[tuple[float, str]],
                       entry: tuple[float, str]) -> None:
        position = bisect.bisect_left(entries, entry)
        if position < len(entries) and entries[position] == entry:
            entries.pop(position)

    # -- index probes (the planner's narrow interface) ---------------------

    def index_size(self) -> int:
        """Number of descriptors (no attribute reads charged)."""
        return len(self._descriptors)

    def eq_candidates(self, name: str,
                      value: Any) -> tuple[set[str], bool] | None:
        """Candidate ids for ``attribute == value``, or None.

        Returns ``(ids, exact)``.  ``None`` means the index cannot
        answer: an unhashable search value, or ``None`` (which also
        matches descriptors *lacking* the attribute — only a scan can
        enumerate those).
        """
        if value is None or not _hashable(value):
            return None
        if isinstance(value, float) and value != value:
            return set(), True      # NaN equals nothing
        ids = self._eq_index.get(name, {}).get(value)
        dirty = self._eq_dirty.get(name)
        if dirty:
            return (ids | dirty) if ids else set(dirty), False
        return ids if ids is not None else set(), True

    def keyword_candidates(self, item: Any) -> tuple[set[str], bool]:
        """Candidate ids for ``item in keywords`` (always answerable).

        The returned set may be a live index reference; callers must
        not mutate it.
        """
        if not _hashable(item):
            return set(self._keyword_dirty), False
        ids = self._keyword_index.get(item)
        if self._keyword_dirty:
            return ((ids | self._keyword_dirty) if ids
                    else set(self._keyword_dirty)), False
        return ids if ids is not None else set(), True

    def medium_candidates(self, medium: Medium) -> set[str]:
        """Ids whose medium is ``medium`` (exact by construction)."""
        return self._medium_index.get(medium, set())

    def numeric_estimate(self, name: str, minimum: float | None,
                         maximum: float | None) -> tuple[int, bool]:
        """Candidate count for a numeric range probe (two bisects,
        nothing materialized) plus exactness.

        Inexact when NaN values exist for the attribute: NaN passes
        every range comparison, so those ids join the superset and the
        leaf is re-verified.
        """
        dirty = self._numeric_dirty.get(name, ())
        entries = self._numeric_index.get(name)
        if not entries:
            return len(dirty), not dirty
        lo, hi = self._sorted_bounds(entries, minimum, maximum)
        return (hi - lo) + len(dirty), not dirty

    def numeric_candidates(self, name: str, minimum: float | None,
                           maximum: float | None) -> set[str]:
        """Candidate ids whose numeric ``name`` lies in the range."""
        dirty = self._numeric_dirty.get(name)
        entries = self._numeric_index.get(name)
        if not entries:
            return set(dirty) if dirty else set()
        lo, hi = self._sorted_bounds(entries, minimum, maximum)
        ids = {did for _, did in entries[lo:hi]}
        return ids | dirty if dirty else ids

    def duration_estimate(self, min_ms: float | None,
                          max_ms: float | None,
                          timebase: TimeBase) -> tuple[int, bool] | None:
        """Candidate count for a duration range probe, or None.

        The index holds canonical milliseconds under the *store's*
        timebase; a query under different conversion rates must fall
        back to the residual predicate.
        """
        if timebase != self.timebase:
            return None
        lo, hi = self._sorted_bounds(self._duration_index, min_ms, max_ms)
        return (hi - lo) + len(self._duration_dirty), \
            not self._duration_dirty

    def duration_candidates(self, min_ms: float | None,
                            max_ms: float | None,
                            timebase: TimeBase) -> set[str]:
        """Candidate ids for a duration range under the store timebase
        (call :meth:`duration_estimate` first to check applicability)."""
        lo, hi = self._sorted_bounds(self._duration_index, min_ms, max_ms)
        ids = {did for _, did in self._duration_index[lo:hi]}
        return ids | self._duration_dirty if self._duration_dirty else ids

    @staticmethod
    def _sorted_bounds(entries: list[tuple[float, str]],
                       minimum: float | None,
                       maximum: float | None) -> tuple[int, int]:
        lo = 0 if minimum is None else bisect.bisect_left(
            entries, minimum, key=itemgetter(0))
        hi = len(entries) if maximum is None else bisect.bisect_right(
            entries, maximum, key=itemgetter(0))
        return lo, max(hi, lo)

    def matches_candidates(self, name: str,
                           wanted: Any) -> tuple[set[str], bool] | None:
        """Candidate ids for a ``matches``-semantics criterion, or None.

        Containment-capable: a tuple/list stored value matches a scalar
        criterion by membership, so the equality index alone is only a
        safe superset when the attribute never held a sequence — except
        for ``keywords``, where the keyword index supplies the
        membership candidates.
        """
        if name == "medium":
            # matches() checks the medium *field*, not an attribute.
            try:
                medium = (wanted if isinstance(wanted, Medium)
                          else Medium.from_name(wanted))
            except Exception:
                return None         # the predicate will raise; scan it
            return self.medium_candidates(medium), True
        if wanted is None or not _hashable(wanted):
            return None
        if name != "keywords" and name in self._sequence_attrs \
                and not isinstance(wanted, (tuple, list)):
            return None             # membership matches are unindexed
        ids = set(self._eq_index.get(name, {}).get(wanted, ()))
        ids |= self._eq_dirty.get(name, set())
        if name == "keywords":
            member_ids, _ = self.keyword_candidates(wanted)
            ids |= member_ids
        return ids, False

    def summary(self) -> StoreSummary:
        """The store's current index summary (cached per version)."""
        if self._summary is None or self._summary.version != self.version:
            attribute_keys = (set(self._eq_index) | set(self._eq_dirty)
                              | set(self._numeric_index)
                              | set(self._numeric_dirty))
            if self._duration_index or self._duration_dirty:
                attribute_keys.add("duration")
            self._summary = StoreSummary(
                version=self.version,
                count=len(self._descriptors),
                keywords=frozenset(self._keyword_index),
                media=frozenset(self._medium_index),
                attribute_keys=frozenset(attribute_keys),
                fuzzy_keywords=bool(self._keyword_dirty),
            )
        return self._summary

    # -- lookup -------------------------------------------------------------

    def descriptor(self, descriptor_id: str) -> DataDescriptor:
        """Fetch a descriptor by id (counts as an attribute read)."""
        self.stats.attribute_reads += 1
        found = self._descriptors.get(descriptor_id)
        if found is None:
            raise StoreError(f"no descriptor {descriptor_id!r} in store "
                             f"{self.name!r}")
        return found

    def block_for(self, descriptor_id: str) -> DataBlock:
        """Fetch the payload block behind a descriptor (a payload read)."""
        descriptor = self.descriptor(descriptor_id)
        if descriptor.block_id is None:
            raise StoreError(
                f"descriptor {descriptor_id!r} references no block")
        block = self._blocks.get(descriptor.block_id)
        if block is None:
            raise StoreError(
                f"block {descriptor.block_id!r} is not stored (descriptor "
                f"travelled without its data)")
        self.stats.payload_reads += 1
        self.stats.payload_bytes += block.size_bytes
        return block

    def has_block(self, block_id: str) -> bool:
        """True when the block's payload is present locally."""
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._descriptors)

    def __contains__(self, descriptor_id: str) -> bool:
        return descriptor_id in self._descriptors

    def descriptors(self) -> Iterator[DataDescriptor]:
        """All descriptors (each counted as an attribute read)."""
        for descriptor in self._descriptors.values():
            self.stats.attribute_reads += 1
            yield descriptor

    def blocks(self) -> Iterator[DataBlock]:
        """All stored blocks (payload reads; used by the packager)."""
        for block in self._blocks.values():
            self.stats.payload_reads += 1
            self.stats.payload_bytes += block.size_bytes
            yield block

    # -- attribute search -----------------------------------------------------

    def find(self, **criteria: Any) -> list[DataDescriptor]:
        """Attribute search through the query planner.

        Each criterion becomes one AST leaf (``medium`` checks the
        descriptor's medium field; a tuple-valued stored attribute
        matches a scalar criterion by containment).  The planner
        consults whichever indexes apply; ``attribute_reads`` is charged
        exactly once per examined descriptor, and payloads are never
        touched.
        """
        from repro.store.query import criteria_query
        return self.find_where(criteria_query(criteria))

    def find_where(self, predicate: Callable[[DataDescriptor], bool],
                   *, kernel=None) -> list[DataDescriptor]:
        """Attribute search with a query AST or an arbitrary predicate.

        A :class:`~repro.store.query.Query` is planned against the
        inverted indexes (falling back to a scan only when no index
        applies); a bare callable always scans.  ``kernel`` picks the
        numeric backend for the plan's set intersections (bit-identical
        results either way).
        """
        from repro.store.planner import execute_plan
        from repro.store.query import Query
        if isinstance(predicate, Query):
            return execute_plan(self, self.explain(predicate),
                                kernel=kernel)
        return self.scan_where(predicate)

    def scan_where(self, predicate: Callable[[DataDescriptor], bool]
                   ) -> list[DataDescriptor]:
        """Full-scan attribute search (the pre-planner baseline path)."""
        results = []
        for descriptor in self._descriptors.values():
            self.stats.attribute_reads += 1
            if predicate(descriptor):
                results.append(descriptor)
        return results

    def explain(self, query) -> "Plan":
        """The plan :meth:`find_where` would execute for ``query``."""
        from repro.store.planner import build_plan
        return build_plan(self, query)

    def descriptor_by_id(self, descriptor_id: str) -> DataDescriptor:
        """Uncounted internal access for the plan executor."""
        return self._descriptors[descriptor_id]

    def in_registration_order(self, ids) -> list[str]:
        """Candidate ids sorted the way a scan would visit them."""
        return sorted(ids, key=self._insertion_rank.__getitem__)

    def rank_array(self, ids, np):
        """A live index set as a sorted int64 insertion-rank array.

        The numpy kernel's form of a candidate set: sorted unique ranks,
        ready for ``np.intersect1d(..., assume_unique=True)``.  Cached
        by set identity and store version, so repeated queries against
        unchanged indexes pay the conversion once; the cache holds the
        set itself, which keeps the identity key valid for the entry's
        lifetime.
        """
        key = id(ids)
        entry = self._rank_cache.get(key)
        if entry is not None and entry[0] == self.version \
                and entry[1] is ids:
            return entry[2]
        rank = self._insertion_rank
        array = np.fromiter((rank[member] for member in ids),
                            dtype=np.int64, count=len(ids))
        array.sort()
        if len(self._rank_cache) >= _RANK_CACHE_CAP:
            self._rank_cache.clear()
        self._rank_cache[key] = (self.version, ids, array)
        return array

    def ids_for_ranks(self, ranks) -> list[str]:
        """Ids for a sorted rank array — registration order for free."""
        rank_to_id = self._rank_to_id
        return [rank_to_id[rank] for rank in ranks.tolist()]

    # -- document integration ---------------------------------------------------

    def resolver(self) -> Callable[[str], DataDescriptor | None]:
        """A resolver suitable for :meth:`CmifDocument.attach_resolver`.

        Document ``file`` attributes name descriptors; unknown names
        resolve to None so validation can warn rather than fail.
        """
        def resolve(file_id: str) -> DataDescriptor | None:
            self.stats.attribute_reads += 1
            return self._descriptors.get(file_id)
        return resolve

    def total_payload_bytes(self) -> int:
        """Total stored payload size (materializes generator blocks)."""
        return sum(block.size_bytes for block in self._blocks.values())
