"""A simulated distributed document store (paper section 6).

"We also feel that the use of both distributed databases and distributed
operating systems support is vital to the efficient implementation of
multimedia systems. ... we are investigating the use of the Amoeba
distributed operating system as a base for a distributed multimedia
system, with integrated support for a distributed database mechanism to
manage document storage across the multimedia environment."

Amoeba itself is substituted (DESIGN.md) by a federation of local
:class:`~repro.store.datastore.DataStore` sites connected by a simulated
network: every remote operation pays a per-request latency plus a
per-byte transfer cost, and the federation keeps transfer accounting.

Two mechanisms keep the federation's *request* traffic proportional to
the sites that can actually answer (Gray's locally-served-network
principle — serve from local knowledge, touch remotes only when they
contribute):

* each site exports a cheap :class:`~repro.store.datastore.StoreSummary`
  (keyword / medium / attribute-key membership, refreshed only when the
  site's store version moves), and :meth:`FederatedStore.find` skips
  any site whose summary cannot match the query — counted in
  ``traffic.requests_avoided``;
* every descriptor that crosses the network is recorded in a
  descriptor→site **routing map**, so later :meth:`descriptor`,
  :meth:`site_of` and :meth:`block_for` calls go straight to the owning
  site instead of probing the federation in order.

That is enough to reproduce the section-6 tendency the paper cares
about: descriptor traffic is tiny and cacheable, payload traffic is
huge, so *moving descriptors instead of data* is the winning strategy —
measured by :mod:`benchmarks.bench_distributed_store` and
:mod:`benchmarks.bench_store_query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import StoreError
from repro.faults import (CircuitBreaker, FaultClock, FaultInjected,
                          FaultPlan, RetryPolicy, RobustnessStats,
                          corrupt_block, parse_fault_plan)
from repro.store.datastore import DataStore, StoreSummary
from repro.store.query import (Always, And, Contains, DurationBetween, Eq,
                               MatchesAttr, MediumIs, Or, Query, Range,
                               criteria_query)

#: Rough size of one serialized descriptor on the wire, in bytes.  Used
#: for transfer accounting only; the exact figure is irrelevant to the
#: descriptor-vs-payload asymmetry being demonstrated.
DESCRIPTOR_WIRE_BYTES = 512

#: Fixed overhead of one serialized index summary, in bytes.
SUMMARY_BASE_WIRE_BYTES = 64

#: Per-entry cost of a summary (one keyword / medium / attribute key).
SUMMARY_ENTRY_WIRE_BYTES = 8


def summary_wire_bytes(summary: StoreSummary) -> int:
    """Simulated wire size of one site summary."""
    entries = (len(summary.keywords) + len(summary.media)
               + len(summary.attribute_keys))
    return SUMMARY_BASE_WIRE_BYTES + SUMMARY_ENTRY_WIRE_BYTES * entries


def summary_can_match(query: Query, summary: StoreSummary) -> bool:
    """Could any descriptor behind ``summary`` satisfy ``query``?

    Conservative: False only when the summary *proves* no match is
    possible (a required keyword / medium / attribute key the site has
    never seen).  Unknown query shapes — NOT, opaque closures — always
    answer True, so pruning can never lose results.
    """
    if isinstance(query, And):
        return all(summary_can_match(part, summary)
                   for part in query.parts)
    if isinstance(query, Or):
        return any(summary_can_match(part, summary)
                   for part in query.parts)
    if isinstance(query, MediumIs):
        return query.medium in summary.media
    if isinstance(query, Contains):
        if query.name != "keywords":
            return query.name in summary.attribute_keys
        if summary.fuzzy_keywords:
            return True
        try:
            return query.item in summary.keywords
        except TypeError:
            return True         # unhashable search item: cannot prune
    if isinstance(query, MatchesAttr):
        if query.name == "medium":
            try:
                medium = (query.wanted
                          if isinstance(query.wanted, Medium)
                          else Medium.from_name(query.wanted))
            except Exception:
                return True     # malformed medium: let the site raise
            return medium in summary.media
        if query.wanted is None:
            return True         # matches descriptors lacking the key
        if query.name == "keywords":
            if summary.fuzzy_keywords:
                return True
            try:
                if query.wanted in summary.keywords:
                    return True
            except TypeError:
                return True
            if isinstance(query.wanted, str):
                # Without fuzzy entries every stored keywords value is a
                # container of hashable members, so a string criterion
                # can only match by membership — proven absent above.
                return False
            return "keywords" in summary.attribute_keys
        return query.name in summary.attribute_keys
    if isinstance(query, Eq):
        if query.value is None:
            return True         # equals-None matches absent attributes
        return query.name in summary.attribute_keys
    if isinstance(query, Range):
        return query.name in summary.attribute_keys
    if isinstance(query, DurationBetween):
        return "duration" in summary.attribute_keys
    if isinstance(query, Always):
        return summary.count > 0
    return True                 # Not / opaque closures: no pruning


@dataclass(frozen=True)
class NetworkModel:
    """Per-request latency and throughput of the simulated network."""

    latency_ms: float = 5.0
    bandwidth_bytes_per_ms: float = 1250.0   # 10 Mbit/s

    def transfer_ms(self, size_bytes: int) -> float:
        """Simulated wall time to move ``size_bytes`` one way."""
        return self.latency_ms + size_bytes / self.bandwidth_bytes_per_ms


@dataclass
class TrafficStats:
    """Accumulated simulated network traffic of one federation."""

    requests: int = 0
    requests_avoided: int = 0
    #: Reads served from the requesting origin's own store (free).
    local_requests: int = 0
    descriptor_bytes: int = 0
    payload_bytes: int = 0
    summary_bytes: int = 0
    #: Placement-plan traffic (descriptor + payload copies/migrations).
    placement_moves: int = 0
    placement_bytes: int = 0
    placement_ms: float = 0.0
    simulated_ms: float = 0.0
    #: Fault/recovery ledger for the federation's remote operations.
    robustness: RobustnessStats = field(default_factory=RobustnessStats)

    def reset(self) -> None:
        """Zero the *counters* only — warm state survives on purpose.

        The federation's descriptor→site routing map, descriptor cache
        and cached summaries live on :class:`FederatedStore`, not here,
        and deliberately survive this reset: the benchmarks that call
        ``traffic.reset()`` measure the *warm* request path (what
        repeat traffic costs once routes are learned).  To measure a
        cold start — counters and caches together — use
        :meth:`FederatedStore.reset_traffic`.
        """
        self.requests = 0
        self.requests_avoided = 0
        self.local_requests = 0
        self.descriptor_bytes = 0
        self.payload_bytes = 0
        self.summary_bytes = 0
        self.placement_moves = 0
        self.placement_bytes = 0
        self.placement_ms = 0.0
        self.simulated_ms = 0.0
        self.robustness = RobustnessStats()

    @property
    def total_bytes(self) -> int:
        """All bytes moved: descriptors, payloads, summaries and
        placement transfers."""
        return self.descriptor_bytes + self.payload_bytes \
            + self.summary_bytes + self.placement_bytes

    def counters(self) -> dict:
        """A plain snapshot of the scalar counters (report plumbing)."""
        return {
            "requests": self.requests,
            "requests_avoided": self.requests_avoided,
            "local_requests": self.local_requests,
            "descriptor_bytes": self.descriptor_bytes,
            "payload_bytes": self.payload_bytes,
            "summary_bytes": self.summary_bytes,
            "placement_moves": self.placement_moves,
            "placement_bytes": self.placement_bytes,
            "placement_ms": self.placement_ms,
            "total_bytes": self.total_bytes,
            "simulated_ms": self.simulated_ms,
        }


@dataclass
class Site:
    """One storage site of the federation."""

    name: str
    store: DataStore
    network: NetworkModel = field(default_factory=NetworkModel)

    def summary(self) -> StoreSummary:
        """The site's current index summary (version-cached)."""
        return self.store.summary()


class SiteUnavailable(StoreError):
    """A remote operation failed after exhausting its retry budget.

    ``pending`` counts the injected faults of the *final* attempt that
    still await an outcome: the catcher must classify them — a replica
    failover, stale summary, or partial result masks them
    (``recovered``); re-raising to the caller makes them
    ``unrecovered``.  A circuit-breaker short carries ``pending=0``
    (shorting is a local refusal, not an injected fault).
    """

    def __init__(self, site: str, kind: str, key: object, *,
                 pending: int, reason: str) -> None:
        super().__init__(
            f"site {site!r} unavailable for {kind} {key!r}: {reason}")
        self.site = site
        self.kind = kind
        self.key = key
        self.pending = pending
        self.reason = reason


@dataclass
class FindOutcome:
    """A federation search result with its completeness marked.

    ``partial`` is True when any remote site could not be (fully)
    consulted; ``unreachable_sites`` were skipped outright,
    ``stale_sites`` were pruned against a stale cached summary (their
    recent additions may be missing).  ``descriptors`` is never
    speculative — everything listed really matched.
    """

    descriptors: list[DataDescriptor]
    partial: bool = False
    unreachable_sites: tuple[str, ...] = ()
    stale_sites: tuple[str, ...] = ()


class FederatedStore:
    """Several sites presenting one descriptor namespace.

    Descriptor lookups consult the local site first, then the routing
    map, then the remotes (paying simulated network cost); fetched
    descriptors are cached locally — the paper's "value of document
    sharing and multiple access to information".  Payload fetches
    always pay full transfer cost and are *not* cached by default
    (payloads are "massive"), unless ``cache_payloads`` is set; caching
    a payload registers the descriptor locally and drops the now
    redundant cache entry.
    """

    #: Circuit-breaker tuning for remote sites (per-site breakers are
    #: created lazily; only consulted when a fault plan is active).
    BREAKER_THRESHOLD = 4
    BREAKER_COOLDOWN_TICKS = 16

    def __init__(self, local: Site, remotes: list[Site], *,
                 cache_payloads: bool = False,
                 faults: FaultPlan | str | None = None,
                 retry: RetryPolicy | None = None,
                 topology=None, tracker=None) -> None:
        names = [local.name] + [site.name for site in remotes]
        if len(set(names)) != len(names):
            raise StoreError(f"duplicate site names in federation: {names}")
        self.local = local
        self.remotes = list(remotes)
        self.cache_payloads = cache_payloads
        self.traffic = TrafficStats()
        #: Optional :class:`~repro.store.placement.SiteTopology`.  When
        #: set, reads that carry an ``origin=`` are priced by the
        #: origin→holder link and served from the cheapest replica;
        #: without it every call keeps the pre-placement behaviour.
        self.topology = topology
        if topology is not None and tracker is None:
            from repro.store.placement import HotSetTracker
            tracker = HotSetTracker()
        #: Optional :class:`~repro.store.placement.HotSetTracker` fed by
        #: every origin-tagged read (the placement policies' input).
        self.hot_tracker = tracker
        # Faults are explicit-only here (no REPRO_FAULTS default): the
        # federation's tests and benches assert exact traffic counts,
        # and the chaos matrix exercises it through the higher layers.
        self.faults = parse_fault_plan(faults)
        self.retry = retry if retry is not None else RetryPolicy()
        self.fault_clock = FaultClock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._descriptor_cache: dict[str, DataDescriptor] = {}
        #: descriptor id -> name of the site that physically holds it.
        self._routes: dict[str, str] = {}
        self._sites_by_name: dict[str, Site] = {
            site.name: site for site in [local, *remotes]}
        #: last summary seen per remote site (refreshed by version).
        self._summaries: dict[str, StoreSummary] = {}
        #: cached summary wire size per site: (version, bytes).
        self._summary_sizes: dict[str, tuple[int, int]] = {}
        #: affinity pins: descriptor id -> {origin -> serving site}.
        #: Invalidated when a placement plan moves the id.
        self._affinity: dict[str, dict[str, str]] = {}

    def reset_traffic(self, *, forget_caches: bool = True) -> None:
        """Reset traffic counters and, by default, the warm state too.

        With ``forget_caches`` (the default) the routing map, the
        descriptor cache and the cached summaries are cleared together
        with the counters, so subsequent measurements include the
        warm-up traffic a cold federation would pay.  Pass
        ``forget_caches=False`` for the counters-only behaviour of
        ``traffic.reset()``.
        """
        self.traffic.reset()
        if forget_caches:
            self._descriptor_cache.clear()
            self._routes.clear()
            self._summaries.clear()
            self._summary_sizes.clear()
            self._affinity.clear()
            if self.hot_tracker is not None:
                self.hot_tracker.reset()

    # -- guarded remote operations -----------------------------------------

    def _breaker(self, site_name: str) -> CircuitBreaker:
        breaker = self._breakers.get(site_name)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.BREAKER_THRESHOLD,
                cooldown_ticks=self.BREAKER_COOLDOWN_TICKS)
            self._breakers[site_name] = breaker
        return breaker

    def _remote_call(self, site: Site, kind: str, key: object, fetch,
                     *, rate: float = 0.0,
                     network: NetworkModel | None = None):
        """Run one remote operation under the fault plan's weather.

        ``fetch(attempt)`` performs the actual operation and pays its
        normal traffic accounting.  With no plan active this *is*
        ``fetch(0)`` — the pre-fault code path, zero added cost.  With
        a plan, each attempt ticks the fault clock, consults the site's
        circuit breaker, and may be failed by a site outage, a
        transient fault of this ``kind`` (probability ``rate``), or a
        :class:`FaultInjected` raised inside ``fetch`` (e.g. a corrupt
        payload caught by checksum).  Failed attempts pay one request
        plus latency; retries add exponential backoff to the simulated
        clock until the policy's attempt or deadline budget runs out,
        then :class:`SiteUnavailable` carries the final attempt's
        unclassified faults to the caller.
        """
        if self.faults is None:
            return fetch(0)
        plan = self.faults
        policy = self.retry
        robust = self.traffic.robustness
        breaker = self._breaker(site.name)
        network = network if network is not None else site.network
        elapsed_ms = 0.0
        attempt = 0
        while True:
            tick = self.fault_clock.tick()
            allowed, probe = breaker.allow(tick)
            if not allowed:
                robust.breaker_shorts += 1
                raise SiteUnavailable(site.name, kind, key, pending=0,
                                      reason="circuit breaker open")
            if probe:
                robust.breaker_probes += 1
            failure = None
            fetch_paid = False
            if plan.site_down(site.name, tick):
                robust.record_fault("site-outage")
                failure = "site outage"
            elif plan.fires(rate, kind, key, attempt):
                robust.record_fault(kind)
                failure = f"transient {kind} failure"
            if failure is None:
                try:
                    result = fetch(attempt)
                except FaultInjected as exc:
                    failure = str(exc)      # fault already recorded
                    fetch_paid = True       # ...and its traffic paid
                else:
                    if breaker.record_success():
                        robust.breaker_closes += 1
                    if plan.fires(plan.latency_rate, "latency", key,
                                  attempt):
                        robust.record_fault("latency")
                        robust.absorbed += 1
                        self.traffic.simulated_ms += plan.latency_spike_ms
                    return result
            # One injected fault is now pending an outcome.  An attempt
            # that never reached fetch() still pays one request plus
            # latency; a corrupt delivery already paid its transfer.
            if not fetch_paid:
                self.traffic.requests += 1
                self.traffic.simulated_ms += network.latency_ms
            elapsed_ms += network.latency_ms
            if breaker.record_failure(tick):
                robust.breaker_opens += 1
            attempt += 1
            if policy.gives_up(attempt, elapsed_ms):
                if elapsed_ms >= policy.deadline_ms:
                    robust.deadline_exhausted += 1
                raise SiteUnavailable(site.name, kind, key, pending=1,
                                      reason=failure)
            backoff = policy.backoff_ms(attempt - 1)
            robust.retries += 1
            robust.backoff_ms += backoff
            robust.recovered += 1       # the retry masks this fault
            self.traffic.simulated_ms += backoff
            elapsed_ms += backoff

    # -- routing -----------------------------------------------------------

    @property
    def cached_descriptor_count(self) -> int:
        """How many remote descriptors are currently cached locally."""
        return len(self._descriptor_cache)

    def site(self, name: str) -> Site:
        """The named site, local or remote."""
        try:
            return self._sites_by_name[name]
        except KeyError:
            raise StoreError(
                f"no site named {name!r} in the federation") from None

    def holders(self, descriptor_id: str) -> list[str]:
        """Names of every site physically holding a descriptor."""
        return [site.name for site in self._sites_by_name.values()
                if descriptor_id in site.store]

    def _effective_origin(self, origin: str | None) -> str | None:
        """Origin-aware routing needs a topology; without one the
        origin tag is ignored and behaviour is pre-placement."""
        if origin is None or self.topology is None:
            return None
        return origin

    def _link(self, origin: str | None, site: Site) -> NetworkModel:
        """The network a read from ``origin`` pays to reach ``site``."""
        if origin is None or self.topology is None:
            return site.network
        return self.topology.link(origin, site.name)

    def _track(self, origin: str | None, descriptor_id: str,
               payload_bytes: int) -> None:
        if origin is not None and self.hot_tracker is not None:
            self.hot_tracker.record(origin, descriptor_id, payload_bytes)

    def _record_route(self, descriptor_id: str, site_name: str) -> None:
        self._routes[descriptor_id] = site_name

    def _routed_site(self, descriptor_id: str) -> Site | None:
        """The site the routing map names, if it still holds the id."""
        site_name = self._routes.get(descriptor_id)
        if site_name is None:
            return None
        site = self._sites_by_name.get(site_name)
        if site is None or descriptor_id not in site.store:
            self._routes.pop(descriptor_id, None)   # stale route
            return None
        return site

    def _summary_size(self, site: Site, summary: StoreSummary) -> int:
        """The summary's wire size, cached per (site, version) — the
        size walk over every keyword/medium/attribute entry runs once
        per version, not once per refresh."""
        cached = self._summary_sizes.get(site.name)
        if cached is not None and cached[0] == summary.version:
            return cached[1]
        size = summary_wire_bytes(summary)
        self._summary_sizes[site.name] = (summary.version, size)
        return size

    def _summary_for(self, site: Site,
                     origin: str | None = None) -> StoreSummary:
        """The site's summary, refreshed (and paid for) when stale.

        Coherence is modelled as *push-invalidation*: sites are assumed
        to broadcast their version bumps (a real federation would
        piggyback them on any reply, or multicast invalidations), so
        learning "has this site changed?" is free and only the summary
        refresh itself pays a request plus its wire bytes.
        """
        cached = self._summaries.get(site.name)
        if cached is not None and cached.version == site.store.version:
            return cached
        network = self._link(origin, site)

        def fetch(attempt: int) -> StoreSummary:
            summary = site.summary()
            size = self._summary_size(site, summary)
            self.traffic.requests += 1
            self.traffic.summary_bytes += size
            self.traffic.simulated_ms += network.transfer_ms(size)
            return summary

        rate = 0.0 if self.faults is None \
            else self.faults.summary_failure_rate
        summary = self._remote_call(
            site, "summary", (site.name, site.store.version), fetch,
            rate=rate, network=network)
        self._summaries[site.name] = summary
        return summary

    # -- descriptor path ---------------------------------------------------

    #: Nominal transfer size used to rank replica links (blends the
    #: per-request latency with the per-byte cost of a typical payload).
    RANK_TRANSFER_BYTES = 65536

    def _holding_sites(self, descriptor_id: str,
                       origin: str | None = None) -> list[Site]:
        """Candidate sites for an id in failover order.

        Without an origin: the routed site first, then every other
        remote replica (pre-placement behaviour).  With an origin and a
        topology: every holding site — local included — ordered by the
        origin's link cost; an affinity pin recorded for (origin, id)
        keeps reads on the chosen replica until a placement plan (or a
        vanished copy) invalidates it.
        """
        if origin is None or self.topology is None:
            routed = self._routed_site(descriptor_id)
            candidates = [] if routed is None else [routed]
            for site in self.remotes:
                if site is not routed and descriptor_id in site.store:
                    candidates.append(site)
            return candidates
        holding = [site for site in self._sites_by_name.values()
                   if descriptor_id in site.store]
        holding.sort(key=lambda site: (
            self._rank_cost(origin, site.name), site.name))
        pins = self._affinity.get(descriptor_id)
        pinned = None if pins is None else pins.get(origin)
        if pinned is not None:
            pinned_site = self._sites_by_name.get(pinned)
            if pinned_site is None or descriptor_id not in \
                    pinned_site.store:
                pins.pop(origin, None)          # stale pin: copy gone
            else:
                holding.sort(key=lambda site: site.name != pinned)
                return holding
        if holding:
            self._affinity.setdefault(descriptor_id, {})[origin] = \
                holding[0].name
        return holding

    def _rank_cost(self, origin: str, site_name: str) -> float:
        link = self.topology.link(origin, site_name)
        return link.transfer_ms(self.RANK_TRANSFER_BYTES)

    def _classify_failover(self, pending: int, failed: list[str]) -> None:
        """A replica answered after ``failed`` sites did not: the
        pending faults were masked by failover."""
        if self.faults is None or not failed:
            return
        robust = self.traffic.robustness
        robust.failovers += 1
        robust.recovered += pending

    def descriptor(self, descriptor_id: str, *,
                   origin: str | None = None) -> DataDescriptor:
        """Resolve a descriptor: local, cache, route, then probing.

        Under an active fault plan an unavailable site fails over to
        any other replica holding the id; only when every holder is
        unavailable does the lookup fail.  With a topology attached and
        an ``origin`` site given, the read is priced from that origin
        and served by its cheapest replica (free when the origin's own
        store holds the id) — results are identical either way.
        """
        origin = self._effective_origin(origin)
        if origin is None:
            if descriptor_id in self.local.store:
                return self.local.store.descriptor(descriptor_id)
        else:
            self._track(origin, descriptor_id, DESCRIPTOR_WIRE_BYTES)
            home = self._sites_by_name.get(origin)
            if home is not None and descriptor_id in home.store:
                self.traffic.local_requests += 1
                return home.store.descriptor(descriptor_id)
        cached = self._descriptor_cache.get(descriptor_id)
        if cached is not None:
            return cached
        pending = 0
        failed: list[str] = []
        for site in self._holding_sites(descriptor_id, origin):
            network = self._link(origin, site)

            def fetch(attempt: int, site: Site = site,
                      network: NetworkModel = network) -> DataDescriptor:
                self.traffic.requests += 1
                self.traffic.descriptor_bytes += DESCRIPTOR_WIRE_BYTES
                self.traffic.simulated_ms += network.transfer_ms(
                    DESCRIPTOR_WIRE_BYTES)
                return site.store.descriptor(descriptor_id)

            try:
                descriptor = self._remote_call(
                    site, "descriptor", descriptor_id, fetch,
                    network=network)
            except SiteUnavailable as exc:
                pending += exc.pending
                failed.append(site.name)
                continue
            self._classify_failover(pending, failed)
            self._descriptor_cache[descriptor_id] = descriptor
            self._record_route(descriptor_id, site.name)
            return descriptor
        if failed:
            self.traffic.robustness.unrecovered += pending
            raise StoreError(
                f"descriptor {descriptor_id!r} unreachable: site(s) "
                f"{', '.join(failed)} unavailable")
        raise StoreError(
            f"no site in the federation holds descriptor "
            f"{descriptor_id!r}")

    def site_of(self, descriptor_id: str) -> str:
        """Which site physically holds a descriptor's data.

        Locally held (including payload-cached) descriptors answer
        immediately; everything the federation has ever routed answers
        from the routing map without touching any site.
        """
        if descriptor_id in self.local.store:
            return self.local.name
        routed = self._routed_site(descriptor_id)
        if routed is not None:
            return routed.name
        for site in self.remotes:
            if descriptor_id in site.store:
                self._record_route(descriptor_id, site.name)
                return site.name
        raise StoreError(f"descriptor {descriptor_id!r} is nowhere in "
                         f"the federation")

    # -- payload path ----------------------------------------------------------

    def block_for(self, descriptor_id: str, *,
                  origin: str | None = None) -> DataBlock:
        """Fetch a payload block, paying transfer cost when remote.

        Under an active fault plan a delivery may be transiently failed
        (``block_failure_rate``) or corrupted in flight
        (``block_corrupt_rate``) — corruption is detected by checksum
        and the fetch retried; an unavailable site fails over to any
        other replica holding the id.  With a topology attached and an
        ``origin`` site given, transfer is priced over the origin's
        cheapest link and a replica at the origin serves for free —
        the block returned is identical either way.
        """
        origin = self._effective_origin(origin)
        if origin is None:
            if descriptor_id in self.local.store:
                return self.local.store.block_for(descriptor_id)
        else:
            home = self._sites_by_name.get(origin)
            if home is not None and descriptor_id in home.store:
                block = home.store.block_for(descriptor_id)
                self.traffic.local_requests += 1
                self._track(origin, descriptor_id, block.size_bytes)
                return block
        pending = 0
        failed: list[str] = []
        for site in self._holding_sites(descriptor_id, origin):
            network = self._link(origin, site)

            def fetch(attempt: int, site: Site = site,
                      network: NetworkModel = network) -> DataBlock:
                block = site.store.block_for(descriptor_id)
                size = block.size_bytes
                self.traffic.requests += 1
                self.traffic.payload_bytes += size
                self.traffic.simulated_ms += network.transfer_ms(size)
                plan = self.faults
                if plan is not None and plan.fires(
                        plan.block_corrupt_rate, "block-corrupt",
                        descriptor_id, attempt):
                    robust = self.traffic.robustness
                    robust.record_fault("block-corrupt")
                    damaged = corrupt_block(block)
                    if damaged.checksum() != block.checksum():
                        robust.checksum_rejects += 1
                        raise FaultInjected(
                            "block-corrupt", descriptor_id,
                            f"checksum mismatch on block for "
                            f"{descriptor_id!r} from {site.name}")
                    robust.absorbed += 1    # pragma: no cover
                return block

            rate = 0.0 if self.faults is None \
                else self.faults.block_failure_rate
            try:
                block = self._remote_call(site, "block", descriptor_id,
                                          fetch, rate=rate,
                                          network=network)
            except SiteUnavailable as exc:
                pending += exc.pending
                failed.append(site.name)
                continue
            self._classify_failover(pending, failed)
            self._record_route(descriptor_id, site.name)
            if origin is not None:
                self._track(origin, descriptor_id, block.size_bytes)
            if self.cache_payloads and origin is None:
                descriptor = site.store.descriptor(descriptor_id)
                if descriptor_id not in self.local.store:
                    self.local.store.register(
                        DataDescriptor(
                            descriptor_id=descriptor.descriptor_id,
                            medium=descriptor.medium,
                            block_id=descriptor.block_id,
                            attributes=dict(descriptor.attributes)),
                        block)
                # The local copy now serves lookups; a stale cache
                # entry would shadow any later local update.
                self._descriptor_cache.pop(descriptor_id, None)
            return block
        if failed:
            self.traffic.robustness.unrecovered += pending
            raise StoreError(
                f"block for {descriptor_id!r} unreachable: site(s) "
                f"{', '.join(failed)} unavailable")
        raise StoreError(
            f"no site in the federation holds a block for "
            f"{descriptor_id!r}")

    # -- federation-wide attribute search -----------------------------------------

    def find(self, **criteria) -> list[DataDescriptor]:
        """Attribute search across the federation (descriptor traffic
        only); criteria semantics match :meth:`DataStore.find`."""
        return self.find_where(criteria_query(criteria))

    def find_where(self, query: Query, *,
                   origin: str | None = None) -> list[DataDescriptor]:
        """Planned attribute search; see :meth:`find_where_detailed`.

        Under an active fault plan the result may silently be partial —
        callers that need to know use :meth:`find_where_detailed`,
        whose :class:`FindOutcome` marks incompleteness explicitly.
        """
        return self.find_where_detailed(query, origin=origin).descriptors

    def find_where_detailed(self, query: Query, *,
                            origin: str | None = None) -> FindOutcome:
        """Planned attribute search across every site that can match.

        The local site answers through its own planner for free; each
        remote site is consulted only when its cached index summary
        (refreshed when the site's store version moves) says the query
        could match there — skipped sites are tallied in
        ``traffic.requests_avoided``.  Contacted sites answer with
        matching descriptors at one request plus one descriptor's bytes
        per match — the section-6 search-key scenario.

        Under an active fault plan, a site whose summary refresh fails
        is pruned against its last cached summary instead (a *stale*
        site: recent additions may be missed), and a site that cannot
        be reached at all is skipped (*unreachable*).  Either case
        marks the outcome ``partial``.

        With a topology attached and an ``origin`` given, the origin's
        own site answers for free and every other site is priced over
        the origin's link.  Results are returned in descriptor-id
        order, so *what* a search returns never depends on placement —
        only the traffic bill does.
        """
        origin = self._effective_origin(origin)
        if origin is None:
            home = self.local
            fanout = list(self.remotes)
        else:
            home = self._sites_by_name.get(origin, self.local)
            fanout = [site for site in self._sites_by_name.values()
                      if site is not home]
            self.traffic.local_requests += 1
        results = list(home.store.find_where(query))
        seen = {descriptor.descriptor_id for descriptor in results}
        unreachable: list[str] = []
        stale: list[str] = []
        for site in fanout:
            try:
                summary = self._summary_for(site, origin)
            except SiteUnavailable as exc:
                robust = self.traffic.robustness
                cached = self._summaries.get(site.name)
                if cached is None:
                    # Nothing to prune with and the site is down:
                    # serve without it, explicitly partial.
                    robust.recovered += exc.pending
                    unreachable.append(site.name)
                    continue
                robust.stale_summaries += 1
                robust.recovered += exc.pending
                stale.append(site.name)
                summary = cached
            if not summary_can_match(query, summary):
                self.traffic.requests_avoided += 1
                continue

            network = self._link(origin, site)

            def fetch(attempt: int, site: Site = site,
                      network: NetworkModel = network
                      ) -> list[DataDescriptor]:
                matches = site.store.find_where(query)
                self.traffic.requests += 1
                matched_bytes = DESCRIPTOR_WIRE_BYTES * len(matches)
                self.traffic.descriptor_bytes += matched_bytes
                self.traffic.simulated_ms += network.transfer_ms(
                    matched_bytes)
                return matches

            try:
                matches = self._remote_call(
                    site, "find", (site.name, site.store.version), fetch,
                    network=network)
            except SiteUnavailable as exc:
                self.traffic.robustness.recovered += exc.pending
                unreachable.append(site.name)
                continue
            for descriptor in matches:
                self._record_route(descriptor.descriptor_id, site.name)
                if descriptor.descriptor_id not in seen:
                    seen.add(descriptor.descriptor_id)
                    results.append(descriptor)
                    self._descriptor_cache[descriptor.descriptor_id] = \
                        descriptor
        if unreachable:
            self.traffic.robustness.partial_results += 1
        results.sort(key=lambda descriptor: descriptor.descriptor_id)
        return FindOutcome(results,
                           partial=bool(unreachable or stale),
                           unreachable_sites=tuple(unreachable),
                           stale_sites=tuple(stale))

    def resolver(self):
        """A document resolver over the whole federation."""
        def resolve(file_id: str) -> DataDescriptor | None:
            try:
                return self.descriptor(file_id)
            except StoreError:
                return None
        return resolve

    # -- placement ---------------------------------------------------------

    def _invalidate_placement(self, descriptor_id: str) -> None:
        """Drop every cached route for an id a plan just moved: the
        stale ``_routed_site`` / affinity pins must not keep serving
        from the old owner."""
        self._routes.pop(descriptor_id, None)
        self._descriptor_cache.pop(descriptor_id, None)
        self._affinity.pop(descriptor_id, None)

    def apply_placement(self, plan):
        """Execute a :class:`~repro.store.placement.ReplicationPlan`.

        Each move copies the descriptor (and its payload block, when it
        has one) from source to target, unregistering the source copy
        on a migration.  The transfer is charged to the placement
        counters *and* to ``simulated_ms`` — a plan has to pay for its
        own moves, so the bench's ≥3× gate already nets them out.
        Placement transfers are control-plane traffic: they run outside
        the fault plan's weather (a real rebalancer retries in the
        background at leisure).
        """
        from repro.store.placement import PlacementOutcome
        applied = skipped = 0
        bytes_moved = 0
        cost_ms = 0.0
        done: list = []
        for move in plan.moves:
            source = self._sites_by_name.get(move.source)
            target = self._sites_by_name.get(move.target)
            if (source is None or target is None
                    or move.descriptor_id not in source.store
                    or move.descriptor_id in target.store):
                skipped += 1
                continue
            descriptor = source.store.descriptor(move.descriptor_id)
            block = None
            size = DESCRIPTOR_WIRE_BYTES
            if descriptor.block_id is not None:
                block = source.store.block_for(move.descriptor_id)
                size += block.size_bytes
            target.store.register(
                DataDescriptor(
                    descriptor_id=descriptor.descriptor_id,
                    medium=descriptor.medium,
                    block_id=descriptor.block_id,
                    attributes=dict(descriptor.attributes)),
                block)
            if move.action == "migrate":
                source.store.unregister(move.descriptor_id)
            link = (self.topology.link(move.target, move.source)
                    if self.topology is not None else source.network)
            applied += 1
            bytes_moved += size
            cost_ms += link.transfer_ms(size)
            self._invalidate_placement(move.descriptor_id)
            done.append(move)
        self.traffic.placement_moves += applied
        self.traffic.placement_bytes += bytes_moved
        self.traffic.placement_ms += cost_ms
        self.traffic.simulated_ms += cost_ms
        return PlacementOutcome(applied=applied, skipped=skipped,
                                bytes_moved=bytes_moved,
                                simulated_ms=cost_ms,
                                moves=tuple(done))

    def rebalance(self, policy):
        """Plan with ``policy`` and apply in one step; returns
        ``(plan, outcome)``."""
        from repro.store.placement import resolve_policy
        plan = resolve_policy(policy).plan(self)
        return plan, self.apply_placement(plan)

    # -- streaming ---------------------------------------------------------

    def stream_ids_for(self, document) -> tuple[str, ...]:
        """Every federation id a presentation of ``document`` pulls:
        its EXT file references plus, by the ``<name>/package``
        convention, the document's packed program payload."""
        styles = document.styles_or_none()
        from repro.core.nodes import NodeKind
        from repro.core.tree import iter_preorder
        ids: list[str] = []
        seen: set[str] = set()
        package_id = f"{document.root.name}/package"
        if self.holders(package_id):
            ids.append(package_id)
            seen.add(package_id)
        for node in iter_preorder(document.root):
            if node.kind is not NodeKind.EXT:
                continue
            file_id = node.effective("file", styles=styles)
            if file_id is not None and file_id not in seen:
                seen.add(file_id)
                ids.append(file_id)
        return tuple(ids)

    def stream(self, stream_ids, *, origin: str | None = None) -> int:
        """Pull every listed payload toward ``origin`` — one session's
        content traffic.  Ids nobody holds, and ids whose every replica
        is unavailable under the fault plan, are skipped (the serving
        layer degrades; this accounting must not abort the session).
        Returns the number of payload bytes delivered.
        """
        delivered = 0
        for descriptor_id in stream_ids:
            try:
                descriptor = self.descriptor(descriptor_id,
                                             origin=origin)
                if descriptor.block_id is not None:
                    delivered += self.block_for(
                        descriptor_id, origin=origin).size_bytes
            except StoreError:
                continue
        return delivered

    def stream_document(self, document, *,
                        origin: str | None = None) -> int:
        """:meth:`stream` over :meth:`stream_ids_for`."""
        return self.stream(self.stream_ids_for(document), origin=origin)

    # -- placement analysis ---------------------------------------------------------

    def placement_report(self, document=None):
        """Where data physically lives, with byte footprints.

        The paper: "management of the location of data in a
        transportable document" — this is the map a placement optimizer
        would consume.  With a ``document``, each of its EXT file
        references is attributed to the site that serves it
        (``<missing>`` when nobody does); without one the whole
        federation is reported.  Either way every site entry carries
        its descriptor count and payload byte footprint, and the report
        includes a replication-factor histogram.
        """
        from repro.store.placement import (PlacementReport,
                                           PlacementSiteReport)
        report = PlacementReport()
        if document is None:
            counted: dict[str, int] = {}
            for site in self._sites_by_name.values():
                store = site.store
                report.sites[site.name] = PlacementSiteReport(
                    site=site.name,
                    descriptor_count=len(store),
                    payload_bytes=store.total_payload_bytes(),
                    file_ids=tuple(sorted(
                        d.descriptor_id for d in store.descriptors())))
                for descriptor in store.descriptors():
                    counted[descriptor.descriptor_id] = \
                        counted.get(descriptor.descriptor_id, 0) + 1
            for factor in counted.values():
                report.replica_histogram[factor] = \
                    report.replica_histogram.get(factor, 0) + 1
            return report
        placement: dict[str, list[str]] = {}
        styles = document.styles_or_none()
        from repro.core.nodes import NodeKind
        from repro.core.tree import iter_preorder
        for node in iter_preorder(document.root):
            if node.kind is not NodeKind.EXT:
                continue
            file_id = node.effective("file", styles=styles)
            if file_id is None:
                continue
            try:
                site = self.site_of(file_id)
            except StoreError:
                site = "<missing>"
            placement.setdefault(site, []).append(file_id)
            copies = len(self.holders(file_id))
            if copies:
                report.replica_histogram[copies] = \
                    report.replica_histogram.get(copies, 0) + 1
        for site_name, file_ids in placement.items():
            file_ids.sort()
            payload = 0
            site = self._sites_by_name.get(site_name)
            if site is not None:
                for file_id in file_ids:
                    descriptor = site.store.descriptor(file_id)
                    if descriptor.block_id is not None:
                        payload += site.store.block_for(
                            file_id).size_bytes
            report.sites[site_name] = PlacementSiteReport(
                site=site_name,
                descriptor_count=len(file_ids),
                payload_bytes=payload,
                file_ids=tuple(file_ids))
        return report
