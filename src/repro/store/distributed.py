"""A simulated distributed document store (paper section 6).

"We also feel that the use of both distributed databases and distributed
operating systems support is vital to the efficient implementation of
multimedia systems. ... we are investigating the use of the Amoeba
distributed operating system as a base for a distributed multimedia
system, with integrated support for a distributed database mechanism to
manage document storage across the multimedia environment."

Amoeba itself is substituted (DESIGN.md) by a federation of local
:class:`~repro.store.datastore.DataStore` sites connected by a simulated
network: every remote operation pays a per-request latency plus a
per-byte transfer cost, and the federation keeps transfer accounting.

Two mechanisms keep the federation's *request* traffic proportional to
the sites that can actually answer (Gray's locally-served-network
principle — serve from local knowledge, touch remotes only when they
contribute):

* each site exports a cheap :class:`~repro.store.datastore.StoreSummary`
  (keyword / medium / attribute-key membership, refreshed only when the
  site's store version moves), and :meth:`FederatedStore.find` skips
  any site whose summary cannot match the query — counted in
  ``traffic.requests_avoided``;
* every descriptor that crosses the network is recorded in a
  descriptor→site **routing map**, so later :meth:`descriptor`,
  :meth:`site_of` and :meth:`block_for` calls go straight to the owning
  site instead of probing the federation in order.

That is enough to reproduce the section-6 tendency the paper cares
about: descriptor traffic is tiny and cacheable, payload traffic is
huge, so *moving descriptors instead of data* is the winning strategy —
measured by :mod:`benchmarks.bench_distributed_store` and
:mod:`benchmarks.bench_store_query`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import StoreError
from repro.store.datastore import DataStore, StoreSummary
from repro.store.query import (Always, And, Contains, DurationBetween, Eq,
                               MatchesAttr, MediumIs, Or, Query, Range,
                               criteria_query)

#: Rough size of one serialized descriptor on the wire, in bytes.  Used
#: for transfer accounting only; the exact figure is irrelevant to the
#: descriptor-vs-payload asymmetry being demonstrated.
DESCRIPTOR_WIRE_BYTES = 512

#: Fixed overhead of one serialized index summary, in bytes.
SUMMARY_BASE_WIRE_BYTES = 64

#: Per-entry cost of a summary (one keyword / medium / attribute key).
SUMMARY_ENTRY_WIRE_BYTES = 8


def summary_wire_bytes(summary: StoreSummary) -> int:
    """Simulated wire size of one site summary."""
    entries = (len(summary.keywords) + len(summary.media)
               + len(summary.attribute_keys))
    return SUMMARY_BASE_WIRE_BYTES + SUMMARY_ENTRY_WIRE_BYTES * entries


def summary_can_match(query: Query, summary: StoreSummary) -> bool:
    """Could any descriptor behind ``summary`` satisfy ``query``?

    Conservative: False only when the summary *proves* no match is
    possible (a required keyword / medium / attribute key the site has
    never seen).  Unknown query shapes — NOT, opaque closures — always
    answer True, so pruning can never lose results.
    """
    if isinstance(query, And):
        return all(summary_can_match(part, summary)
                   for part in query.parts)
    if isinstance(query, Or):
        return any(summary_can_match(part, summary)
                   for part in query.parts)
    if isinstance(query, MediumIs):
        return query.medium in summary.media
    if isinstance(query, Contains):
        if query.name != "keywords":
            return query.name in summary.attribute_keys
        if summary.fuzzy_keywords:
            return True
        try:
            return query.item in summary.keywords
        except TypeError:
            return True         # unhashable search item: cannot prune
    if isinstance(query, MatchesAttr):
        if query.name == "medium":
            try:
                medium = (query.wanted
                          if isinstance(query.wanted, Medium)
                          else Medium.from_name(query.wanted))
            except Exception:
                return True     # malformed medium: let the site raise
            return medium in summary.media
        if query.wanted is None:
            return True         # matches descriptors lacking the key
        if query.name == "keywords":
            if summary.fuzzy_keywords:
                return True
            try:
                if query.wanted in summary.keywords:
                    return True
            except TypeError:
                return True
            if isinstance(query.wanted, str):
                # Without fuzzy entries every stored keywords value is a
                # container of hashable members, so a string criterion
                # can only match by membership — proven absent above.
                return False
            return "keywords" in summary.attribute_keys
        return query.name in summary.attribute_keys
    if isinstance(query, Eq):
        if query.value is None:
            return True         # equals-None matches absent attributes
        return query.name in summary.attribute_keys
    if isinstance(query, Range):
        return query.name in summary.attribute_keys
    if isinstance(query, DurationBetween):
        return "duration" in summary.attribute_keys
    if isinstance(query, Always):
        return summary.count > 0
    return True                 # Not / opaque closures: no pruning


@dataclass(frozen=True)
class NetworkModel:
    """Per-request latency and throughput of the simulated network."""

    latency_ms: float = 5.0
    bandwidth_bytes_per_ms: float = 1250.0   # 10 Mbit/s

    def transfer_ms(self, size_bytes: int) -> float:
        """Simulated wall time to move ``size_bytes`` one way."""
        return self.latency_ms + size_bytes / self.bandwidth_bytes_per_ms


@dataclass
class TrafficStats:
    """Accumulated simulated network traffic of one federation."""

    requests: int = 0
    requests_avoided: int = 0
    descriptor_bytes: int = 0
    payload_bytes: int = 0
    summary_bytes: int = 0
    simulated_ms: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.requests = 0
        self.requests_avoided = 0
        self.descriptor_bytes = 0
        self.payload_bytes = 0
        self.summary_bytes = 0
        self.simulated_ms = 0.0

    @property
    def total_bytes(self) -> int:
        """All bytes moved: descriptors, payloads and summaries."""
        return self.descriptor_bytes + self.payload_bytes \
            + self.summary_bytes


@dataclass
class Site:
    """One storage site of the federation."""

    name: str
    store: DataStore
    network: NetworkModel = field(default_factory=NetworkModel)

    def summary(self) -> StoreSummary:
        """The site's current index summary (version-cached)."""
        return self.store.summary()


class FederatedStore:
    """Several sites presenting one descriptor namespace.

    Descriptor lookups consult the local site first, then the routing
    map, then the remotes (paying simulated network cost); fetched
    descriptors are cached locally — the paper's "value of document
    sharing and multiple access to information".  Payload fetches
    always pay full transfer cost and are *not* cached by default
    (payloads are "massive"), unless ``cache_payloads`` is set; caching
    a payload registers the descriptor locally and drops the now
    redundant cache entry.
    """

    def __init__(self, local: Site, remotes: list[Site], *,
                 cache_payloads: bool = False) -> None:
        names = [local.name] + [site.name for site in remotes]
        if len(set(names)) != len(names):
            raise StoreError(f"duplicate site names in federation: {names}")
        self.local = local
        self.remotes = list(remotes)
        self.cache_payloads = cache_payloads
        self.traffic = TrafficStats()
        self._descriptor_cache: dict[str, DataDescriptor] = {}
        #: descriptor id -> name of the site that physically holds it.
        self._routes: dict[str, str] = {}
        self._sites_by_name: dict[str, Site] = {
            site.name: site for site in [local, *remotes]}
        #: last summary seen per remote site (refreshed by version).
        self._summaries: dict[str, StoreSummary] = {}

    # -- routing -----------------------------------------------------------

    @property
    def cached_descriptor_count(self) -> int:
        """How many remote descriptors are currently cached locally."""
        return len(self._descriptor_cache)

    def _record_route(self, descriptor_id: str, site_name: str) -> None:
        self._routes[descriptor_id] = site_name

    def _routed_site(self, descriptor_id: str) -> Site | None:
        """The site the routing map names, if it still holds the id."""
        site_name = self._routes.get(descriptor_id)
        if site_name is None:
            return None
        site = self._sites_by_name.get(site_name)
        if site is None or descriptor_id not in site.store:
            self._routes.pop(descriptor_id, None)   # stale route
            return None
        return site

    def _summary_for(self, site: Site) -> StoreSummary:
        """The site's summary, refreshed (and paid for) when stale.

        Coherence is modelled as *push-invalidation*: sites are assumed
        to broadcast their version bumps (a real federation would
        piggyback them on any reply, or multicast invalidations), so
        learning "has this site changed?" is free and only the summary
        refresh itself pays a request plus its wire bytes.
        """
        cached = self._summaries.get(site.name)
        if cached is not None and cached.version == site.store.version:
            return cached
        summary = site.summary()
        size = summary_wire_bytes(summary)
        self.traffic.requests += 1
        self.traffic.summary_bytes += size
        self.traffic.simulated_ms += site.network.transfer_ms(size)
        self._summaries[site.name] = summary
        return summary

    # -- descriptor path ---------------------------------------------------

    def descriptor(self, descriptor_id: str) -> DataDescriptor:
        """Resolve a descriptor: local, cache, route, then probing."""
        if descriptor_id in self.local.store:
            return self.local.store.descriptor(descriptor_id)
        cached = self._descriptor_cache.get(descriptor_id)
        if cached is not None:
            return cached
        routed = self._routed_site(descriptor_id)
        sites = [routed] if routed is not None else self.remotes
        for site in sites:
            if descriptor_id in site.store:
                self.traffic.requests += 1
                self.traffic.descriptor_bytes += DESCRIPTOR_WIRE_BYTES
                self.traffic.simulated_ms += site.network.transfer_ms(
                    DESCRIPTOR_WIRE_BYTES)
                descriptor = site.store.descriptor(descriptor_id)
                self._descriptor_cache[descriptor_id] = descriptor
                self._record_route(descriptor_id, site.name)
                return descriptor
        raise StoreError(
            f"no site in the federation holds descriptor "
            f"{descriptor_id!r}")

    def site_of(self, descriptor_id: str) -> str:
        """Which site physically holds a descriptor's data.

        Locally held (including payload-cached) descriptors answer
        immediately; everything the federation has ever routed answers
        from the routing map without touching any site.
        """
        if descriptor_id in self.local.store:
            return self.local.name
        routed = self._routed_site(descriptor_id)
        if routed is not None:
            return routed.name
        for site in self.remotes:
            if descriptor_id in site.store:
                self._record_route(descriptor_id, site.name)
                return site.name
        raise StoreError(f"descriptor {descriptor_id!r} is nowhere in "
                         f"the federation")

    # -- payload path ----------------------------------------------------------

    def block_for(self, descriptor_id: str) -> DataBlock:
        """Fetch a payload block, paying transfer cost when remote."""
        if descriptor_id in self.local.store:
            return self.local.store.block_for(descriptor_id)
        routed = self._routed_site(descriptor_id)
        sites = [routed] if routed is not None else self.remotes
        for site in sites:
            if descriptor_id in site.store:
                block = site.store.block_for(descriptor_id)
                size = block.size_bytes
                self.traffic.requests += 1
                self.traffic.payload_bytes += size
                self.traffic.simulated_ms += site.network.transfer_ms(size)
                self._record_route(descriptor_id, site.name)
                if self.cache_payloads:
                    descriptor = site.store.descriptor(descriptor_id)
                    if descriptor_id not in self.local.store:
                        self.local.store.register(
                            DataDescriptor(
                                descriptor_id=descriptor.descriptor_id,
                                medium=descriptor.medium,
                                block_id=descriptor.block_id,
                                attributes=dict(descriptor.attributes)),
                            block)
                    # The local copy now serves lookups; a stale cache
                    # entry would shadow any later local update.
                    self._descriptor_cache.pop(descriptor_id, None)
                return block
        raise StoreError(
            f"no site in the federation holds a block for "
            f"{descriptor_id!r}")

    # -- federation-wide attribute search -----------------------------------------

    def find(self, **criteria) -> list[DataDescriptor]:
        """Attribute search across the federation (descriptor traffic
        only); criteria semantics match :meth:`DataStore.find`."""
        return self.find_where(criteria_query(criteria))

    def find_where(self, query: Query) -> list[DataDescriptor]:
        """Planned attribute search across every site that can match.

        The local site answers through its own planner for free; each
        remote site is consulted only when its cached index summary
        (refreshed when the site's store version moves) says the query
        could match there — skipped sites are tallied in
        ``traffic.requests_avoided``.  Contacted sites answer with
        matching descriptors at one request plus one descriptor's bytes
        per match — the section-6 search-key scenario.
        """
        results = list(self.local.store.find_where(query))
        seen = {descriptor.descriptor_id for descriptor in results}
        for site in self.remotes:
            summary = self._summary_for(site)
            if not summary_can_match(query, summary):
                self.traffic.requests_avoided += 1
                continue
            matches = site.store.find_where(query)
            self.traffic.requests += 1
            matched_bytes = DESCRIPTOR_WIRE_BYTES * len(matches)
            self.traffic.descriptor_bytes += matched_bytes
            self.traffic.simulated_ms += site.network.transfer_ms(
                matched_bytes)
            for descriptor in matches:
                self._record_route(descriptor.descriptor_id, site.name)
                if descriptor.descriptor_id not in seen:
                    seen.add(descriptor.descriptor_id)
                    results.append(descriptor)
                    self._descriptor_cache[descriptor.descriptor_id] = \
                        descriptor
        return results

    def resolver(self):
        """A document resolver over the whole federation."""
        def resolve(file_id: str) -> DataDescriptor | None:
            try:
                return self.descriptor(file_id)
            except StoreError:
                return None
        return resolve

    # -- placement analysis ---------------------------------------------------------

    def placement_report(self, document) -> dict[str, list[str]]:
        """Which site serves each of a document's file references.

        The paper: "management of the location of data in a
        transportable document" — this is the map a placement optimizer
        would consume.
        """
        placement: dict[str, list[str]] = {}
        styles = document.styles_or_none()
        from repro.core.nodes import NodeKind
        from repro.core.tree import iter_preorder
        for node in iter_preorder(document.root):
            if node.kind is not NodeKind.EXT:
                continue
            file_id = node.effective("file", styles=styles)
            if file_id is None:
                continue
            try:
                site = self.site_of(file_id)
            except StoreError:
                site = "<missing>"
            placement.setdefault(site, []).append(file_id)
        for file_ids in placement.values():
            file_ids.sort()
        return placement
