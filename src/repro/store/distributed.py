"""A simulated distributed document store (paper section 6).

"We also feel that the use of both distributed databases and distributed
operating systems support is vital to the efficient implementation of
multimedia systems. ... we are investigating the use of the Amoeba
distributed operating system as a base for a distributed multimedia
system, with integrated support for a distributed database mechanism to
manage document storage across the multimedia environment."

Amoeba itself is substituted (DESIGN.md) by a federation of local
:class:`~repro.store.datastore.DataStore` sites connected by a simulated
network: every remote operation pays a per-request latency plus a
per-byte transfer cost, and the federation keeps transfer accounting.
That is enough to reproduce the section-6 tendency the paper cares
about: descriptor traffic is tiny and cacheable, payload traffic is
huge, so *moving descriptors instead of data* is the winning strategy —
measured by :mod:`benchmarks.bench_distributed_store`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import StoreError
from repro.store.datastore import DataStore

#: Rough size of one serialized descriptor on the wire, in bytes.  Used
#: for transfer accounting only; the exact figure is irrelevant to the
#: descriptor-vs-payload asymmetry being demonstrated.
DESCRIPTOR_WIRE_BYTES = 512


@dataclass(frozen=True)
class NetworkModel:
    """Per-request latency and throughput of the simulated network."""

    latency_ms: float = 5.0
    bandwidth_bytes_per_ms: float = 1250.0   # 10 Mbit/s

    def transfer_ms(self, size_bytes: int) -> float:
        """Simulated wall time to move ``size_bytes`` one way."""
        return self.latency_ms + size_bytes / self.bandwidth_bytes_per_ms


@dataclass
class TrafficStats:
    """Accumulated simulated network traffic of one federation."""

    requests: int = 0
    descriptor_bytes: int = 0
    payload_bytes: int = 0
    simulated_ms: float = 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.requests = 0
        self.descriptor_bytes = 0
        self.payload_bytes = 0
        self.simulated_ms = 0.0

    @property
    def total_bytes(self) -> int:
        """All bytes moved, descriptors plus payloads."""
        return self.descriptor_bytes + self.payload_bytes


@dataclass
class Site:
    """One storage site of the federation."""

    name: str
    store: DataStore
    network: NetworkModel = field(default_factory=NetworkModel)


class FederatedStore:
    """Several sites presenting one descriptor namespace.

    Descriptor lookups consult the local site first, then the remotes
    (paying simulated network cost); fetched descriptors are cached
    locally — the paper's "value of document sharing and multiple access
    to information".  Payload fetches always pay full transfer cost and
    are *not* cached by default (payloads are "massive"), unless
    ``cache_payloads`` is set.
    """

    def __init__(self, local: Site, remotes: list[Site], *,
                 cache_payloads: bool = False) -> None:
        names = [local.name] + [site.name for site in remotes]
        if len(set(names)) != len(names):
            raise StoreError(f"duplicate site names in federation: {names}")
        self.local = local
        self.remotes = list(remotes)
        self.cache_payloads = cache_payloads
        self.traffic = TrafficStats()
        self._descriptor_cache: dict[str, DataDescriptor] = {}

    # -- descriptor path ---------------------------------------------------

    def descriptor(self, descriptor_id: str) -> DataDescriptor:
        """Resolve a descriptor, local first, then remotes (with cache)."""
        if descriptor_id in self.local.store:
            return self.local.store.descriptor(descriptor_id)
        cached = self._descriptor_cache.get(descriptor_id)
        if cached is not None:
            return cached
        for site in self.remotes:
            if descriptor_id in site.store:
                self.traffic.requests += 1
                self.traffic.descriptor_bytes += DESCRIPTOR_WIRE_BYTES
                self.traffic.simulated_ms += site.network.transfer_ms(
                    DESCRIPTOR_WIRE_BYTES)
                descriptor = site.store.descriptor(descriptor_id)
                self._descriptor_cache[descriptor_id] = descriptor
                return descriptor
        raise StoreError(
            f"no site in the federation holds descriptor "
            f"{descriptor_id!r}")

    def site_of(self, descriptor_id: str) -> str:
        """Which site physically holds a descriptor's data."""
        for site in [self.local, *self.remotes]:
            if descriptor_id in site.store:
                return site.name
        raise StoreError(f"descriptor {descriptor_id!r} is nowhere in "
                         f"the federation")

    # -- payload path ----------------------------------------------------------

    def block_for(self, descriptor_id: str) -> DataBlock:
        """Fetch a payload block, paying transfer cost when remote."""
        if descriptor_id in self.local.store:
            return self.local.store.block_for(descriptor_id)
        for site in self.remotes:
            if descriptor_id in site.store:
                block = site.store.block_for(descriptor_id)
                size = block.size_bytes
                self.traffic.requests += 1
                self.traffic.payload_bytes += size
                self.traffic.simulated_ms += site.network.transfer_ms(size)
                if self.cache_payloads:
                    descriptor = site.store.descriptor(descriptor_id)
                    if descriptor_id not in self.local.store:
                        self.local.store.register(
                            DataDescriptor(
                                descriptor_id=descriptor.descriptor_id,
                                medium=descriptor.medium,
                                block_id=descriptor.block_id,
                                attributes=dict(descriptor.attributes)),
                            block)
                return block
        raise StoreError(
            f"no site in the federation holds a block for "
            f"{descriptor_id!r}")

    # -- federation-wide attribute search -----------------------------------------

    def find(self, **criteria) -> list[DataDescriptor]:
        """Attribute search across every site (descriptor traffic only).

        Each remote site answers with matching descriptors; the
        simulated cost is one request plus one descriptor's bytes per
        match — the section-6 search-key scenario.
        """
        results = list(self.local.store.find(**criteria))
        seen = {descriptor.descriptor_id for descriptor in results}
        for site in self.remotes:
            matches = site.store.find(**criteria)
            self.traffic.requests += 1
            matched_bytes = DESCRIPTOR_WIRE_BYTES * len(matches)
            self.traffic.descriptor_bytes += matched_bytes
            self.traffic.simulated_ms += site.network.transfer_ms(
                matched_bytes)
            for descriptor in matches:
                if descriptor.descriptor_id not in seen:
                    seen.add(descriptor.descriptor_id)
                    results.append(descriptor)
                    self._descriptor_cache[descriptor.descriptor_id] = \
                        descriptor
        return results

    def resolver(self):
        """A document resolver over the whole federation."""
        def resolve(file_id: str) -> DataDescriptor | None:
            try:
                return self.descriptor(file_id)
            except StoreError:
                return None
        return resolve

    # -- placement analysis ---------------------------------------------------------

    def placement_report(self, document) -> dict[str, list[str]]:
        """Which site serves each of a document's file references.

        The paper: "management of the location of data in a
        transportable document" — this is the map a placement optimizer
        would consume.
        """
        placement: dict[str, list[str]] = {}
        styles = document.styles_or_none()
        from repro.core.nodes import NodeKind
        from repro.core.tree import iter_preorder
        for node in iter_preorder(document.root):
            if node.kind is not NodeKind.EXT:
                continue
            file_id = node.effective("file", styles=styles)
            if file_id is None:
                continue
            try:
                site = self.site_of(file_id)
            except StoreError:
                site = "<missing>"
            placement.setdefault(site, []).append(file_id)
        for file_ids in placement.values():
            file_ids.sort()
        return placement
