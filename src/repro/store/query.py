"""An inspectable combinator query language over data descriptors (§6).

"If the attributes contain search key information, then many time
consuming activities relating to finding detailed information in large
multimedia database may be simplified."  This module provides composable
predicates over descriptors — equality, containment, numeric ranges,
boolean combinators — as a small AST the
:class:`~repro.store.planner` module compiles into index-backed plans.

Every node is still a plain callable (``query(descriptor) -> bool``) and
still composes with ``&``, ``|`` and ``~``, so code written against the
original closure-only :class:`Query` keeps working; the difference is
that the structure is now *inspectable*, which is what lets the
:class:`~repro.store.datastore.DataStore` answer selective queries from
its inverted indexes instead of scanning every descriptor.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.core.channels import Medium
from repro.core.descriptors import DataDescriptor
from repro.core.errors import QueryError
from repro.core.timebase import TimeBase

Predicate = Callable[[DataDescriptor], bool]


class Query:
    """A composable descriptor predicate with a readable description.

    Instantiated directly it wraps an opaque callable (the original
    closure form, kept for compatibility); the planner treats such
    leaves as unindexable residuals.  The subclasses below form the
    indexable AST.
    """

    def __init__(self, predicate: Predicate,
                 description: str = "<opaque>") -> None:
        self.predicate = predicate
        self.description = description

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return bool(self.predicate(descriptor))

    def __and__(self, other: "Query") -> "Query":
        return And((self, other))

    def __or__(self, other: "Query") -> "Query":
        return Or((self, other))

    def __invert__(self) -> "Query":
        return Not(self)

    def __repr__(self) -> str:
        return f"Query({self.description})"

    def children(self) -> tuple["Query", ...]:
        """Sub-queries of a combinator node (leaves have none)."""
        return ()


def iter_leaves(query: Query) -> Iterator[Query]:
    """All leaf nodes of a query AST, in declaration order."""
    children = query.children()
    if not children:
        yield query
        return
    for child in children:
        yield from iter_leaves(child)


# -- leaf nodes -----------------------------------------------------------


class Eq(Query):
    """Attribute ``name`` equals ``value`` exactly."""

    def __init__(self, name: str, value: Any) -> None:
        self.name = name
        self.value = value
        self.description = f"{name} == {value!r}"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return descriptor.get(self.name) == self.value


class Contains(Query):
    """Sequence attribute ``name`` contains ``item`` (keywords etc.)."""

    def __init__(self, name: str, item: Any) -> None:
        self.name = name
        self.item = item
        self.description = f"{item!r} in {name}"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        stored = descriptor.get(self.name)
        if stored is None:
            return False
        if isinstance(stored, (tuple, list, set, frozenset, str)):
            return self.item in stored
        return False


class Range(Query):
    """Numeric attribute ``name`` lies in [minimum, maximum]."""

    def __init__(self, name: str, minimum: float | None = None,
                 maximum: float | None = None) -> None:
        if minimum is None and maximum is None:
            raise QueryError("attr_range needs at least one bound")
        self.name = name
        self.minimum = minimum
        self.maximum = maximum
        self.description = f"{minimum!r} <= {name} <= {maximum!r}"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        value = descriptor.get(self.name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if self.minimum is not None and value < self.minimum:
            return False
        if self.maximum is not None and value > self.maximum:
            return False
        return True


class MediumIs(Query):
    """Descriptor medium equals ``medium``."""

    def __init__(self, medium: Medium | str) -> None:
        self.medium = (medium if isinstance(medium, Medium)
                       else Medium.from_name(medium))
        self.description = f"medium == {self.medium.value}"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return descriptor.medium is self.medium


class DurationBetween(Query):
    """Intrinsic duration lies in [min_ms, max_ms] (canonical ms)."""

    def __init__(self, min_ms: float | None = None,
                 max_ms: float | None = None,
                 timebase: TimeBase | None = None) -> None:
        if min_ms is None and max_ms is None:
            raise QueryError("duration_between needs at least one bound")
        self.min_ms = min_ms
        self.max_ms = max_ms
        self.timebase = timebase or TimeBase()
        self.description = f"duration in [{min_ms}, {max_ms}]ms"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        duration = descriptor.duration
        if duration is None:
            return False
        value = self.timebase.to_ms(duration)
        if self.min_ms is not None and value < self.min_ms:
            return False
        if self.max_ms is not None and value > self.max_ms:
            return False
        return True


class MatchesAttr(Query):
    """One criterion with :meth:`DataDescriptor.matches` semantics.

    Equality, except that a tuple/list-valued stored attribute matches
    when it *contains* a scalar criterion — the semantics
    :meth:`DataStore.find` has always used for keyword criteria.
    """

    def __init__(self, name: str, wanted: Any) -> None:
        self.name = name
        self.wanted = wanted
        self.description = f"{name} ~ {wanted!r}"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return descriptor.matches(**{self.name: self.wanted})


class Always(Query):
    """Matches every descriptor."""

    def __init__(self) -> None:
        self.description = "TRUE"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return True


# -- combinator nodes ------------------------------------------------------


class And(Query):
    """All parts match (n-ary; nested ANDs are flattened)."""

    def __init__(self, parts: tuple[Query, ...]) -> None:
        flattened: list[Query] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if not flattened:
            raise QueryError("AND needs at least one part")
        self.parts = tuple(flattened)
        self.description = ("(" + " AND ".join(p.description
                                               for p in self.parts) + ")")

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return all(part(descriptor) for part in self.parts)

    def children(self) -> tuple[Query, ...]:
        return self.parts


class Or(Query):
    """Any part matches (n-ary; nested ORs are flattened)."""

    def __init__(self, parts: tuple[Query, ...]) -> None:
        flattened: list[Query] = []
        for part in parts:
            if isinstance(part, Or):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if not flattened:
            raise QueryError("OR needs at least one part")
        self.parts = tuple(flattened)
        self.description = ("(" + " OR ".join(p.description
                                              for p in self.parts) + ")")

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return any(part(descriptor) for part in self.parts)

    def children(self) -> tuple[Query, ...]:
        return self.parts


class Not(Query):
    """The negation of one part."""

    def __init__(self, part: Query) -> None:
        self.part = part
        self.description = f"(NOT {part.description})"

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return not self.part(descriptor)

    def children(self) -> tuple[Query, ...]:
        return (self.part,)


# -- factory functions (the stable public surface) -------------------------


def attr_eq(name: str, value: Any) -> Query:
    """Attribute ``name`` equals ``value``."""
    return Eq(name, value)


def attr_contains(name: str, item: Any) -> Query:
    """Sequence attribute ``name`` contains ``item`` (keywords etc.)."""
    return Contains(name, item)


def attr_range(name: str, minimum: float | None = None,
               maximum: float | None = None) -> Query:
    """Numeric attribute ``name`` lies in [minimum, maximum]."""
    return Range(name, minimum, maximum)


def medium_is(medium: Medium | str) -> Query:
    """Descriptor medium equals ``medium``."""
    return MediumIs(medium)


def duration_between(min_ms: float | None = None,
                     max_ms: float | None = None,
                     timebase: TimeBase | None = None) -> Query:
    """Intrinsic duration lies in [min_ms, max_ms] (canonical ms)."""
    return DurationBetween(min_ms, max_ms, timebase)


def keyword(word: str) -> Query:
    """Shorthand for a keyword search (the common section-6 case)."""
    return Contains("keywords", word)


def always() -> Query:
    """Matches every descriptor."""
    return Always()


def criteria_query(criteria: dict[str, Any]) -> Query:
    """The AST equivalent of ``DataStore.find(**criteria)``."""
    parts: list[Query] = []
    for name, wanted in criteria.items():
        if name == "medium":
            parts.append(MediumIs(wanted))
        else:
            parts.append(MatchesAttr(name, wanted))
    if not parts:
        return Always()
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def run(store, query: Query) -> list[DataDescriptor]:
    """Execute ``query`` against a :class:`DataStore` (attribute-only)."""
    return store.find_where(query)
