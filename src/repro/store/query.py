"""A small combinator query language over data descriptors (paper §6).

"If the attributes contain search key information, then many time
consuming activities relating to finding detailed information in large
multimedia database may be simplified."  This module provides composable
predicates over descriptors — equality, containment, numeric ranges,
boolean combinators — compiled to plain callables the
:class:`~repro.store.datastore.DataStore` executes without touching any
payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.core.channels import Medium
from repro.core.descriptors import DataDescriptor
from repro.core.errors import QueryError
from repro.core.timebase import MediaTime, TimeBase

Predicate = Callable[[DataDescriptor], bool]


@dataclass(frozen=True)
class Query:
    """A composable descriptor predicate with a readable description."""

    predicate: Predicate
    description: str

    def __call__(self, descriptor: DataDescriptor) -> bool:
        return self.predicate(descriptor)

    def __and__(self, other: "Query") -> "Query":
        return Query(lambda d: self(d) and other(d),
                     f"({self.description} AND {other.description})")

    def __or__(self, other: "Query") -> "Query":
        return Query(lambda d: self(d) or other(d),
                     f"({self.description} OR {other.description})")

    def __invert__(self) -> "Query":
        return Query(lambda d: not self(d), f"(NOT {self.description})")


def attr_eq(name: str, value: Any) -> Query:
    """Attribute ``name`` equals ``value``."""
    return Query(lambda d: d.get(name) == value, f"{name} == {value!r}")


def attr_contains(name: str, item: Any) -> Query:
    """Sequence attribute ``name`` contains ``item`` (keywords etc.)."""
    def check(descriptor: DataDescriptor) -> bool:
        stored = descriptor.get(name)
        if stored is None:
            return False
        if isinstance(stored, (tuple, list, set, frozenset, str)):
            return item in stored
        return False
    return Query(check, f"{item!r} in {name}")


def attr_range(name: str, minimum: float | None = None,
               maximum: float | None = None) -> Query:
    """Numeric attribute ``name`` lies in [minimum, maximum]."""
    if minimum is None and maximum is None:
        raise QueryError("attr_range needs at least one bound")

    def check(descriptor: DataDescriptor) -> bool:
        value = descriptor.get(name)
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            return False
        if minimum is not None and value < minimum:
            return False
        if maximum is not None and value > maximum:
            return False
        return True
    return Query(check, f"{minimum!r} <= {name} <= {maximum!r}")


def medium_is(medium: Medium | str) -> Query:
    """Descriptor medium equals ``medium``."""
    wanted = medium if isinstance(medium, Medium) else Medium.from_name(medium)
    return Query(lambda d: d.medium is wanted, f"medium == {wanted.value}")


def duration_between(min_ms: float | None = None,
                     max_ms: float | None = None,
                     timebase: TimeBase | None = None) -> Query:
    """Intrinsic duration lies in [min_ms, max_ms] (canonical ms)."""
    if min_ms is None and max_ms is None:
        raise QueryError("duration_between needs at least one bound")
    base = timebase or TimeBase()

    def check(descriptor: DataDescriptor) -> bool:
        duration = descriptor.duration
        if duration is None:
            return False
        value = base.to_ms(duration)
        if min_ms is not None and value < min_ms:
            return False
        if max_ms is not None and value > max_ms:
            return False
        return True
    bounds = f"[{min_ms}, {max_ms}]ms"
    return Query(check, f"duration in {bounds}")


def keyword(word: str) -> Query:
    """Shorthand for a keyword search (the common section-6 case)."""
    return attr_contains("keywords", word)


def always() -> Query:
    """Matches every descriptor."""
    return Query(lambda d: True, "TRUE")


def run(store, query: Query) -> list[DataDescriptor]:
    """Execute ``query`` against a :class:`DataStore` (attribute-only)."""
    return store.find_where(query)
