"""Synthetic image media: graphic/illustration blocks and transformations.

Stands in for the paper's image capture and its figure-4 illustrations
(the stolen paintings, the insurance graph).  Payloads are deterministic
numpy RGB arrays; the transformations are exactly the constraint-filter
examples of paper section 2: "24-bit color to 8-bit color, color to
monochrome, high-resolution to low resolution".
"""

from __future__ import annotations

import numpy as np

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import MediaError
from repro.core.timebase import MediaTime
from repro.core.values import Rect


def synthesize_image(width: int, height: int, *, seed: int = 0
                     ) -> np.ndarray:
    """A deterministic uint8 RGB image of the given size.

    The pattern mixes smooth gradients with seeded structure so crops
    and scales are visually (and numerically) distinguishable.
    """
    if width <= 0 or height <= 0:
        raise MediaError(f"image size must be positive, "
                         f"got {width}x{height}")
    rng = np.random.default_rng(seed)
    ys, xs = np.mgrid[0:height, 0:width]
    red = (xs * 255.0 / max(1, width - 1)) if width > 1 else np.zeros_like(
        xs, dtype=float)
    green = (ys * 255.0 / max(1, height - 1)) if height > 1 \
        else np.zeros_like(ys, dtype=float)
    blue = 128.0 + 64.0 * np.sin(xs / 7.0) * np.cos(ys / 5.0)
    image = np.stack([red, green, blue], axis=-1)
    image += rng.integers(0, 16, size=image.shape)
    return np.clip(image, 0, 255).astype(np.uint8)


def make_image_block(block_id: str, width: int, height: int, *,
                     seed: int = 0, display_ms: float = 8000.0,
                     keywords: tuple[str, ...] = ()
                     ) -> tuple[DataBlock, DataDescriptor]:
    """Create an image block with its descriptor.

    ``display_ms`` is the default presentation duration of the still
    image (a "preference default provided with the atomic media block").
    """
    def generate() -> np.ndarray:
        return synthesize_image(width, height, seed=seed)

    block = DataBlock(block_id=block_id, medium=Medium.IMAGE,
                      payload=generate, generator=True)
    descriptor = DataDescriptor(
        descriptor_id=f"{block_id}.desc",
        medium=Medium.IMAGE,
        block_id=block_id,
        attributes={
            "format": "image/raw-rgb",
            "duration": MediaTime.ms(display_ms),
            "resolution": (width, height),
            "color-depth": 24,
            "keywords": tuple(keywords),
            "resources": {"memory-bytes": width * height * 3},
        },
    )
    return block, descriptor


def crop_image(image: np.ndarray, crop: Rect) -> np.ndarray:
    """Apply a figure-7 ``crop`` attribute to concrete pixels."""
    height, width = image.shape[:2]
    frame = Rect(0, 0, width, height)
    if not frame.contains(crop):
        raise MediaError(
            f"crop {crop} exceeds the image bounds {width}x{height}")
    return image[crop.y:crop.y + crop.height,
                 crop.x:crop.x + crop.width].copy()


def reduce_color_depth(image: np.ndarray, bits_per_channel: int
                       ) -> np.ndarray:
    """Quantize to ``bits_per_channel`` bits (24-bit -> 8-bit filtering).

    A depth of 8 bits per channel is the identity; lower depths quantize
    by dropping low bits and re-expanding so values stay in [0, 255].
    """
    if not 1 <= bits_per_channel <= 8:
        raise MediaError(
            f"bits per channel must be in [1, 8], got {bits_per_channel}")
    if bits_per_channel == 8:
        return image.copy()
    shift = 8 - bits_per_channel
    quantized = (image >> shift).astype(np.uint16)
    maximum = (1 << bits_per_channel) - 1
    return ((quantized * 255) // maximum).astype(np.uint8)


def to_monochrome(image: np.ndarray) -> np.ndarray:
    """Colour to monochrome (ITU-R 601 luma), a filter-stage action."""
    if image.ndim == 2:
        return image.copy()
    weights = np.array([0.299, 0.587, 0.114])
    return (image[..., :3].astype(np.float64) @ weights).astype(np.uint8)


def scale_image(image: np.ndarray, target_width: int,
                target_height: int) -> np.ndarray:
    """Nearest-neighbour rescale (high-res -> low-res filtering)."""
    if target_width <= 0 or target_height <= 0:
        raise MediaError(f"target size must be positive, got "
                         f"{target_width}x{target_height}")
    height, width = image.shape[:2]
    row_index = (np.arange(target_height) * height // target_height)
    column_index = (np.arange(target_width) * width // target_width)
    return image[row_index][:, column_index].copy()


def image_stats(image: np.ndarray) -> dict[str, float]:
    """Mean/min/max summary used by tests to verify transformations."""
    return {
        "mean": float(np.mean(image)),
        "min": float(np.min(image)),
        "max": float(np.max(image)),
    }
