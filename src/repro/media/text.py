"""Synthetic text media: caption and label blocks.

Stands in for the paper's text capture tooling (DESIGN.md substitution
table).  Text is the one medium CMIF interprets slightly — immediate
nodes default to it — so the generator produces deterministic,
seed-driven sentences whose *descriptors* carry everything downstream
tools need: character count, estimated reading duration, language, and
search keywords (the section-6 attribute-only retrieval keys).
"""

from __future__ import annotations

import random

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.timebase import MediaTime, TimeBase, Unit

#: Word pool used by the deterministic sentence generator.  Chosen to
#: echo the paper's news example so generated corpora read plausibly.
_WORDS = (
    "museum painting stolen gallery reporter announcer witness police "
    "insurance value million guilder crime scene public outcry story "
    "evening news broadcast caption label archive curator recovery "
    "investigation suspect frame canvas masterpiece collection"
).split()

_LANGUAGES = ("en", "nl", "fr", "de")


def generate_sentence(rng: random.Random, words: int = 8) -> str:
    """One deterministic sentence of ``words`` words."""
    chosen = [rng.choice(_WORDS) for _ in range(max(1, words))]
    chosen[0] = chosen[0].capitalize()
    return " ".join(chosen) + "."


def generate_paragraph(rng: random.Random, sentences: int = 3,
                       words_per_sentence: int = 8) -> str:
    """A deterministic paragraph."""
    return " ".join(generate_sentence(rng, words_per_sentence)
                    for _ in range(max(1, sentences)))


def make_text_block(block_id: str, *, seed: int = 0, sentences: int = 2,
                    language: str = "en",
                    timebase: TimeBase | None = None,
                    keywords: tuple[str, ...] = (),
                    text: str | None = None
                    ) -> tuple[DataBlock, DataDescriptor]:
    """Create a text data block with its data descriptor.

    When ``text`` is given it is used verbatim; otherwise a deterministic
    paragraph is generated from ``seed``.  The descriptor's duration is
    the reading-speed estimate used for caption scheduling.
    """
    timebase = timebase or TimeBase()
    if text is None:
        rng = random.Random(seed)
        text = generate_paragraph(rng, sentences)
    if language not in _LANGUAGES:
        _ = language  # free-form languages are allowed; known ones indexed
    duration = MediaTime(max(1, len(text)), Unit.CHARACTERS)
    block = DataBlock(block_id=block_id, medium=Medium.TEXT, payload=text)
    descriptor = DataDescriptor(
        descriptor_id=f"{block_id}.desc",
        medium=Medium.TEXT,
        block_id=block_id,
        attributes={
            "format": "text/plain",
            "duration": duration,
            "characters": len(text),
            "language": language,
            "keywords": tuple(keywords) or _extract_keywords(text),
            "resources": {"bandwidth-bps": 8 * len(text)},
        },
    )
    return block, descriptor


def _extract_keywords(text: str, limit: int = 6) -> tuple[str, ...]:
    """Pick the distinct informative words of a text as search keys."""
    seen: list[str] = []
    for raw in text.lower().split():
        word = raw.strip(".,;:!?\"'")
        if len(word) >= 5 and word not in seen:
            seen.append(word)
        if len(seen) >= limit:
            break
    return tuple(seen)


def translate_stub(text: str, target_language: str) -> str:
    """A deterministic 'translation' for multilingual caption channels.

    The paper's caption channel presents "an English translation of the
    Dutch text coming through the speakers"; real translation is out of
    scope, so this tags the text with the target language in a reversible
    way, which is enough to exercise separate caption channels per
    language.
    """
    return f"[{target_language}] {text}"


def reading_duration_ms(text: str, timebase: TimeBase | None = None) -> float:
    """The reading-speed duration estimate for a text, in milliseconds."""
    timebase = timebase or TimeBase()
    return timebase.to_ms(MediaTime(max(1, len(text)), Unit.CHARACTERS))
