"""Synthetic media substrate: text, audio, image and video blocks.

Replaces the paper's capture hardware per the DESIGN.md substitution
table.  Every generator is deterministic in its seed, produces a
(:class:`~repro.core.descriptors.DataBlock`,
:class:`~repro.core.descriptors.DataDescriptor`) pair, and heavy payloads
are produced lazily so attribute-only pipeline stages never synthesize
pixels or samples.
"""

from repro.media.audio import (clip_samples, downsample, make_audio_block,
                               merge_channels, rms_level,
                               synthesize_samples)
from repro.media.image import (crop_image, image_stats, make_image_block,
                               reduce_color_depth, scale_image,
                               synthesize_image, to_monochrome)
from repro.media.text import (generate_paragraph, generate_sentence,
                              make_text_block, reading_duration_ms,
                              translate_stub)
from repro.media.video import (make_video_block, scale_frames, slice_frames,
                               subsample_frame_rate, synthesize_frames)

__all__ = [
    "clip_samples", "crop_image", "downsample", "generate_paragraph",
    "generate_sentence", "image_stats", "make_audio_block",
    "make_image_block", "make_text_block", "make_video_block",
    "merge_channels",
    "reading_duration_ms", "reduce_color_depth", "rms_level",
    "scale_frames", "scale_image", "slice_frames", "subsample_frame_rate",
    "synthesize_frames", "synthesize_image", "synthesize_samples",
    "to_monochrome", "translate_stub",
]
