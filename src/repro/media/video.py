"""Synthetic video media: frame-sequence blocks and transformations.

Stands in for the paper's video capture hardware and its "sequenced
video FAX" example.  A payload is a deterministic sequence of small RGB
frames (each derived from :mod:`repro.media.image` with a per-frame
seed), so that frame-rate sub-sampling and slice extraction — the
constraint-filter examples ("full-frame-rate video to sub-sampled rate
video") — operate on concrete data.

Frames stay deliberately tiny (default 32x24): the pipeline's point is
descriptor-driven manipulation, and the tests only need payloads whose
shape changes detectably under each transformation.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor, Slice
from repro.core.errors import MediaError
from repro.core.timebase import MediaTime, TimeBase
from repro.media.image import synthesize_image


def synthesize_frames(duration_ms: float, frame_rate: float, *,
                      width: int = 32, height: int = 24, seed: int = 0
                      ) -> np.ndarray:
    """Deterministic frames as a (count, height, width, 3) uint8 array."""
    if duration_ms <= 0:
        raise MediaError(f"video duration must be positive, "
                         f"got {duration_ms}ms")
    if frame_rate <= 0:
        raise MediaError(f"frame rate must be positive, got {frame_rate}")
    count = max(1, int(round(duration_ms / 1000.0 * frame_rate)))
    frames = np.empty((count, height, width, 3), dtype=np.uint8)
    for index in range(count):
        base = synthesize_image(width, height, seed=seed + index)
        # A moving bright bar makes consecutive frames distinct, so
        # sub-sampling tests can verify which frames survived.
        bar = (index * 3) % width
        base[:, bar:bar + 2] = 255
        frames[index] = base
    return frames


def make_video_block(block_id: str, duration_ms: float, *,
                     frame_rate: float = 25.0, width: int = 32,
                     height: int = 24, seed: int = 0,
                     keywords: tuple[str, ...] = ()
                     ) -> tuple[DataBlock, DataDescriptor]:
    """Create a video block with its descriptor (payload generated lazily)."""
    def generate() -> np.ndarray:
        return synthesize_frames(duration_ms, frame_rate,
                                 width=width, height=height, seed=seed)

    block = DataBlock(block_id=block_id, medium=Medium.VIDEO,
                      payload=generate, generator=True)
    frame_count = int(round(duration_ms / 1000.0 * frame_rate))
    descriptor = DataDescriptor(
        descriptor_id=f"{block_id}.desc",
        medium=Medium.VIDEO,
        block_id=block_id,
        attributes={
            "format": "video/raw-rgb",
            "duration": MediaTime.ms(duration_ms),
            "frame-rate": frame_rate,
            "frames": frame_count,
            "resolution": (width, height),
            "color-depth": 24,
            "keywords": tuple(keywords),
            "resources": {
                "bandwidth-bps": int(frame_rate * width * height * 24)},
        },
    )
    return block, descriptor


def slice_frames(frames: np.ndarray, frame_rate: float, slice_: Slice,
                 timebase: TimeBase | None = None) -> np.ndarray:
    """Extract the ``slice`` attribute's frame range from a video."""
    timebase = timebase or TimeBase(frame_rate=frame_rate)
    intrinsic_ms = len(frames) / frame_rate * 1000.0
    start_ms, end_ms = slice_.bounds_ms(timebase, intrinsic_ms)
    start = int(round(start_ms / 1000.0 * frame_rate))
    end = int(round(end_ms / 1000.0 * frame_rate))
    if start >= end:
        raise MediaError(f"slice selects no frames: [{start}, {end})")
    return frames[start:end]


def subsample_frame_rate(frames: np.ndarray, frame_rate: float,
                         target_rate: float) -> tuple[np.ndarray, float]:
    """Keep every n-th frame to approximate ``target_rate``.

    Returns the surviving frames and the achieved rate; rates at or above
    the source are the identity.
    """
    if target_rate <= 0:
        raise MediaError(f"target rate must be positive, got {target_rate}")
    if target_rate >= frame_rate:
        return frames, frame_rate
    # Round the step *up* so the achieved rate never exceeds the target
    # (the honesty contract behind playable-with-filtering verdicts).
    step = math.ceil(frame_rate / target_rate - 1e-9)
    return frames[::step], frame_rate / step


def scale_frames(frames: np.ndarray, target_width: int,
                 target_height: int) -> np.ndarray:
    """Rescale every frame (nearest neighbour), a filter-stage action."""
    if target_width <= 0 or target_height <= 0:
        raise MediaError(f"target size must be positive, got "
                         f"{target_width}x{target_height}")
    count, height, width = frames.shape[:3]
    row_index = (np.arange(target_height) * height // target_height)
    column_index = (np.arange(target_width) * width // target_width)
    return frames[:, row_index][:, :, column_index].copy()
