"""Synthetic audio media: sound-stream blocks and transformations.

Stands in for the paper's audio capture hardware (DESIGN.md substitution
table).  Payloads are deterministic numpy sample arrays (a mix of sine
partials and noise) so clip extraction and sample-rate reduction — the
operations the constraint-filter stage performs — act on real data, while
descriptors carry the rates and durations scheduling needs.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor, Slice
from repro.core.errors import MediaError
from repro.core.timebase import MediaTime, TimeBase


def synthesize_samples(duration_ms: float, sample_rate: float, *,
                       seed: int = 0, fundamental_hz: float = 220.0
                       ) -> np.ndarray:
    """Deterministic mono float32 samples of the given duration."""
    if duration_ms <= 0:
        raise MediaError(f"audio duration must be positive, "
                         f"got {duration_ms}ms")
    if sample_rate <= 0:
        raise MediaError(f"sample rate must be positive, got {sample_rate}")
    count = max(1, int(round(duration_ms / 1000.0 * sample_rate)))
    t = np.arange(count, dtype=np.float64) / sample_rate
    rng = np.random.default_rng(seed)
    signal = np.zeros(count)
    for harmonic in (1.0, 2.0, 3.5):
        amplitude = 0.5 / harmonic
        signal += amplitude * np.sin(
            2 * np.pi * fundamental_hz * harmonic * t)
    signal += 0.05 * rng.standard_normal(count)
    peak = np.max(np.abs(signal))
    if peak > 0:
        signal = signal / peak
    return signal.astype(np.float32)


def make_audio_block(block_id: str, duration_ms: float, *,
                     sample_rate: float = 44100.0, seed: int = 0,
                     keywords: tuple[str, ...] = ()
                     ) -> tuple[DataBlock, DataDescriptor]:
    """Create an audio block with its descriptor.

    The payload is generated lazily (a generator block, covering the
    paper's "programs that produce information of a particular type")
    so attribute-only pipeline stages never pay for synthesis.
    """
    def generate() -> np.ndarray:
        return synthesize_samples(duration_ms, sample_rate, seed=seed)

    block = DataBlock(block_id=block_id, medium=Medium.AUDIO,
                      payload=generate, generator=True)
    sample_count = int(round(duration_ms / 1000.0 * sample_rate))
    descriptor = DataDescriptor(
        descriptor_id=f"{block_id}.desc",
        medium=Medium.AUDIO,
        block_id=block_id,
        attributes={
            "format": "audio/pcm-float32",
            "duration": MediaTime.ms(duration_ms),
            "sample-rate": sample_rate,
            "samples": sample_count,
            "channels": 1,
            "keywords": tuple(keywords),
            "resources": {"bandwidth-bps": int(sample_rate * 32)},
        },
    )
    return block, descriptor


def clip_samples(samples: np.ndarray, sample_rate: float,
                 clip: Slice, timebase: TimeBase | None = None
                 ) -> np.ndarray:
    """Extract the ``clip`` attribute's part of a sound fragment.

    Implements figure 7's clip semantics on concrete data: the clip's
    media times resolve through the time base, then map to sample
    indices.
    """
    timebase = timebase or TimeBase(sample_rate=sample_rate)
    intrinsic_ms = len(samples) / sample_rate * 1000.0
    start_ms, end_ms = clip.bounds_ms(timebase, intrinsic_ms)
    start = int(round(start_ms / 1000.0 * sample_rate))
    end = int(round(end_ms / 1000.0 * sample_rate))
    if start >= end:
        raise MediaError(f"clip selects no samples: [{start}, {end})")
    return samples[start:end]


def downsample(samples: np.ndarray, sample_rate: float,
               target_rate: float) -> tuple[np.ndarray, float]:
    """Reduce the sample rate (a constraint-filter action).

    Plain decimation with pre-averaging over each window — crude but
    deterministic, and the filter stage only needs a faithful size/rate
    transformation, not audiophile quality.
    """
    if target_rate <= 0:
        raise MediaError(f"target rate must be positive, got {target_rate}")
    if target_rate >= sample_rate:
        return samples, sample_rate
    # Round the decimation factor *up*: the achieved rate must never
    # exceed the target, or a playable-with-filtering verdict would be
    # dishonest (the filtered document would still over-demand).
    factor = math.ceil(sample_rate / target_rate - 1e-9)
    usable = (len(samples) // factor) * factor
    if usable == 0:
        return samples[:1], sample_rate / factor
    windows = samples[:usable].reshape(-1, factor)
    return windows.mean(axis=1).astype(np.float32), sample_rate / factor


def merge_channels(samples: np.ndarray,
                   target_channels: int) -> np.ndarray:
    """Merge a multi-channel layout down to ``target_channels`` lanes.

    A constraint-filter action (stereo material on a mono device).
    Channels are averaged in contiguous groups; the mono result is a
    1-D array, matching the synthesizer's native layout.
    """
    if target_channels <= 0:
        raise MediaError(f"target channel count must be positive, "
                         f"got {target_channels}")
    if samples.ndim == 1 or samples.shape[1] <= target_channels:
        return samples
    channels = samples.shape[1]
    if target_channels == 1:
        return samples.mean(axis=1).astype(samples.dtype)
    bounds = np.linspace(0, channels, target_channels + 1).astype(int)
    lanes = [samples[:, start:stop].mean(axis=1)
             for start, stop in zip(bounds, bounds[1:])]
    return np.stack(lanes, axis=1).astype(samples.dtype)


def rms_level(samples: np.ndarray) -> float:
    """Root-mean-square level, used by tests to compare transformations."""
    if len(samples) == 0:
        return 0.0
    return float(np.sqrt(np.mean(np.square(samples.astype(np.float64)))))
