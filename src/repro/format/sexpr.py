"""S-expression substrate for the concrete CMIF syntax.

The paper states that "we have created CMIF documents to be
human-readable"; the reference report's concrete grammar [Rossum91] is
not available, so this reproduction defines a parenthesized concrete
syntax directly from the abstract structures of figures 6, 7 and 9 (the
substitution is recorded in DESIGN.md).  This module supplies the
reader/printer for the underlying s-expressions; the CMIF-specific
grammar lives in :mod:`repro.format.parser` and
:mod:`repro.format.writer`.

Data model: an expression is a :class:`Symbol`, a ``str`` (quoted
string), an ``int``/``float``, or a ``list`` of expressions.  Comments
run from ``;`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import FormatError


@dataclass(frozen=True)
class Symbol:
    """A bare (unquoted) token, the concrete form of the paper's ID values."""

    text: str

    def __post_init__(self) -> None:
        if not self.text or any(ch.isspace() for ch in self.text):
            raise FormatError(f"symbol cannot be empty or contain "
                              f"whitespace: {self.text!r}")

    def __str__(self) -> str:
        return self.text


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    kind: str        # 'open' | 'close' | 'string' | 'number' | 'symbol'
    value: object
    line: int
    column: int


_DELIMITERS = set("()\";")

#: One master scanner instead of the seed's char-by-char loop: every
#: position matches exactly one alternative (atoms swallow anything that
#: is not whitespace or a delimiter), except a ``"`` opening a string
#: with escapes/newlines, which falls through to :func:`_read_string`.
#: The parse stage is the corpus-ingest pipeline's front door, so the
#: tokenizer is the one place in the format layer worth this treatment.
_TOKEN_RE = re.compile(
    r"""[^\S\n]+                  # whitespace except newline: skip
      | \n+                       # newlines: tracked for positions
      | ;[^\n]*                   # comment to end of line
      | (?P<open>\()
      | (?P<close>\))
      | (?P<string>"[^"\\\n]*")   # fast path: no escapes, single line
      | (?P<atom>[^\s()";]+)
    """, re.VERBOSE)


def tokenize(text: str) -> Iterator[Token]:
    """Tokenize s-expression source text, tracking line/column."""
    line = 1
    line_start = 0   # offset of the current line's first character
    position = 0
    length = len(text)
    match = _TOKEN_RE.match
    while position < length:
        found = match(text, position)
        if found is None:
            # Only a quote can fail the master pattern: a string with
            # escapes, embedded newlines, or no terminator.
            column = position - line_start + 1
            value, consumed, newlines, end_column = _read_string(
                text, position, line, column)
            yield Token("string", value, line, column)
            position += consumed
            if newlines:
                line += newlines
                line_start = position - (end_column - 1)
            continue
        kind = found.lastgroup
        start = found.start()
        end = found.end()
        if kind is None:            # whitespace, newlines or a comment
            if text[start] == "\n":
                line += end - start
                line_start = end
            position = end
            continue
        column = start - line_start + 1
        if kind == "atom":
            word = found.group("atom")
            number = _try_number(word)
            if number is not None:
                yield Token("number", number, line, column)
            else:
                yield Token("symbol", Symbol(word), line, column)
        elif kind == "string":
            yield Token("string", text[start + 1:end - 1], line, column)
        elif kind == "open":
            yield Token("open", "(", line, column)
        else:
            yield Token("close", ")", line, column)
        position = end


def _read_string(text: str, start: int, line: int,
                 column: int) -> tuple[str, int, int, int]:
    """Read a quoted string starting at ``text[start]`` (a ``\"``).

    Returns (value, characters consumed, newlines inside, column after).
    Supports the escapes ``\\\\``, ``\\\"``, ``\\n``, ``\\t``.
    """
    out: list[str] = []
    i = start + 1
    newlines = 0
    current_column = column + 1
    while i < len(text):
        ch = text[i]
        if ch == '"':
            return "".join(out), i - start + 1, newlines, current_column + 1
        if ch == "\\":
            if i + 1 >= len(text):
                break
            escape = text[i + 1]
            mapping = {"\\": "\\", '"': '"', "n": "\n", "t": "\t"}
            if escape not in mapping:
                raise FormatError(f"unknown string escape \\{escape}",
                                  line, current_column)
            out.append(mapping[escape])
            i += 2
            current_column += 2
            continue
        if ch == "\n":
            newlines += 1
            current_column = 1
        else:
            current_column += 1
        out.append(ch)
        i += 1
    raise FormatError("unterminated string literal", line, column)


def _try_number(word: str) -> int | float | None:
    """Parse ``word`` as a number, or None when it is a symbol."""
    # Cheap reject before the exception-priced parses: every numeric
    # token starts with a digit, sign or dot; most atoms are names.
    if word[0] not in "+-.0123456789":
        return None
    try:
        return int(word)
    except ValueError:
        pass
    try:
        value = float(word)
    except ValueError:
        return None
    # Reject words like 'inf'/'nan' as numbers; they read as symbols so
    # the CMIF grammar can give 'inf' its own meaning (unbounded delay).
    if word.lower() in ("inf", "-inf", "nan", "infinity", "-infinity"):
        return None
    return value


def parse_all(text: str) -> list[object]:
    """Parse the source text into a list of top-level expressions."""
    stack: list[list[object]] = [[]]
    opens: list[Token] = []
    for token in tokenize(text):
        if token.kind == "open":
            stack.append([])
            opens.append(token)
        elif token.kind == "close":
            if len(stack) == 1:
                raise FormatError("unbalanced ')'", token.line, token.column)
            finished = stack.pop()
            opens.pop()
            stack[-1].append(finished)
        else:
            stack[-1].append(token.value)
    if len(stack) != 1:
        token = opens[-1]
        raise FormatError("unbalanced '('", token.line, token.column)
    return stack[0]


def parse_one(text: str) -> object:
    """Parse exactly one expression from the source text."""
    expressions = parse_all(text)
    if len(expressions) != 1:
        raise FormatError(
            f"expected exactly one expression, found {len(expressions)}")
    return expressions[0]


def dump(expression: object, indent: int = 0, width: int = 76) -> str:
    """Pretty-print an expression with indentation.

    Short lists are kept on one line; long ones break after the head so
    documents stay readable — the property the paper wants from the
    interchange form.
    """
    flat = _dump_flat(expression)
    if len(flat) + indent <= width or not isinstance(expression, list):
        return flat
    if not expression:
        return "()"
    head = _dump_flat(expression[0])
    lines = ["(" + head]
    pad = " " * (indent + 2)
    for item in expression[1:]:
        lines.append(pad + dump(item, indent + 2, width))
    return "\n".join(lines) + ")"


def _dump_flat(expression: object) -> str:
    """Single-line rendering of an expression."""
    if isinstance(expression, list):
        return "(" + " ".join(_dump_flat(item) for item in expression) + ")"
    if isinstance(expression, Symbol):
        return expression.text
    if isinstance(expression, str):
        escaped = (expression.replace("\\", "\\\\").replace('"', '\\"')
                   .replace("\n", "\\n").replace("\t", "\\t"))
        return f'"{escaped}"'
    if isinstance(expression, bool):
        return "true" if expression else "false"
    if isinstance(expression, float):
        # repr() is the shortest representation that round-trips exactly;
        # integral floats drop the trailing ".0" for readability.
        if expression.is_integer() and abs(expression) < 1e16:
            return str(int(expression))
        return repr(expression)
    if isinstance(expression, int):
        return str(expression)
    raise FormatError(f"cannot serialize {expression!r} as an s-expression")


def head_symbol(expression: object) -> str | None:
    """The head symbol text of a list expression, or None."""
    if (isinstance(expression, list) and expression
            and isinstance(expression[0], Symbol)):
        return expression[0].text
    return None
