"""Concrete syntaxes for CMIF documents: s-expression text and JSON.

The text form is the transportable, human-readable interchange format
the paper calls for; :func:`parse_document` / :func:`write_document`
round-trip losslessly.  The JSON form mirrors it for JSON-speaking
tooling.
"""

from repro.format.json_io import (arc_from_obj, arc_to_obj,
                                  document_from_json, document_to_json,
                                  node_from_obj, node_to_obj,
                                  value_from_obj, value_to_obj)
from repro.format.parser import (parse_arc, parse_document, parse_node,
                                 parse_time, parse_value)
from repro.format.sexpr import (Symbol, dump, head_symbol, parse_all,
                                parse_one, tokenize)
from repro.format.writer import (arc_expression, attributes_expression,
                                 node_expression, time_expression,
                                 value_items, write_document)

__all__ = [
    "Symbol", "arc_expression", "arc_from_obj", "arc_to_obj",
    "attributes_expression", "document_from_json", "document_to_json",
    "dump", "head_symbol", "node_expression", "node_from_obj",
    "node_to_obj", "parse_all", "parse_arc", "parse_document",
    "parse_node", "parse_one", "parse_time", "parse_value", "time_expression",
    "tokenize", "value_from_obj", "value_items", "value_to_obj",
    "write_document",
]
