"""Parsing the concrete CMIF text form back into documents.

The exact inverse of :mod:`repro.format.writer`.  The grammar::

    document   := (cmif (version N) node)
    node       := (seq attrs? node*) | (par attrs? node*)
                | (ext attrs?) | (imm attrs? STRING*)
    attrs      := (attributes attr*)
    attr       := (NAME item*) | sync-arc
    sync-arc   := (sync-arc (type ANCHOR STRICT) (source PATH ANCHOR?)
                   (offset time) (dest PATH) (min time)
                   (max time|inf) (when STRING)?)
    time       := (time NUMBER UNIT)
    item       := atom | (rect N N N N) | time | group-entry

Value decoding rules (mirroring the writer):

* a single atom item is a scalar (symbol -> ID string, quoted string,
  number; ``true``/``false`` -> bool);
* several atom items form a pointer tuple (the paper's ``value*``);
* list items headed by ``time``/``rect`` are tagged values;
* any other list items form a nested group (name -> value).
"""

from __future__ import annotations

from typing import Any

from repro.core.document import CmifDocument
from repro.core.errors import FormatError
from repro.core.nodes import ContainerNode, Node, NodeKind, make_node
from repro.core.syncarc import (Anchor, ConditionalArc, Strictness, SyncArc)
from repro.core.timebase import MediaTime, Unit
from repro.core.values import Rect
from repro.format.sexpr import Symbol, head_symbol, parse_one

_TAGGED_HEADS = frozenset({"time", "rect"})


def parse_document(text: str) -> CmifDocument:
    """Parse concrete CMIF text into a :class:`CmifDocument`."""
    expression = parse_one(text)
    if head_symbol(expression) != "cmif":
        raise FormatError("document must be a (cmif ...) form")
    body = expression[1:]
    node_form: object | None = None
    for item in body:
        head = head_symbol(item)
        if head == "version":
            version = item[1] if len(item) > 1 else None
            if version != 1:
                raise FormatError(f"unsupported CMIF format version "
                                  f"{version!r}")
        elif head in {kind.value for kind in NodeKind}:
            if node_form is not None:
                raise FormatError("document has more than one root node")
            node_form = item
        else:
            raise FormatError(f"unexpected form ({head} ...) at document "
                              f"level")
    if node_form is None:
        raise FormatError("document has no root node")
    root = parse_node(node_form)
    if not isinstance(root, ContainerNode):
        raise FormatError("the root node must be seq or par")
    return CmifDocument.from_root(root)


def parse_node(expression: object) -> Node:
    """Parse one node form (recursively)."""
    head = head_symbol(expression)
    kinds = {kind.value: kind for kind in NodeKind}
    if head not in kinds:
        raise FormatError(f"expected a node form, got ({head} ...)")
    kind = kinds[head]
    body = list(expression[1:])
    attribute_forms: list = []
    if body and head_symbol(body[0]) == "attributes":
        attribute_forms = body.pop(0)[1:]

    if kind.is_container:
        node = make_node(kind)
        _apply_attributes(node, attribute_forms)
        assert isinstance(node, ContainerNode)
        for child_form in body:
            node.add(parse_node(child_form))
        return node

    if kind is NodeKind.IMM:
        data = _parse_immediate_data(body)
        node = make_node(kind, data=data)
        _apply_attributes(node, attribute_forms)
        if node.attributes.get("medium") not in (None, "text") \
                and isinstance(data, str):
            node.data = _maybe_decode_binary(node, data)
        return node

    if body:
        raise FormatError("ext nodes take no children or data")
    node = make_node(kind)
    _apply_attributes(node, attribute_forms)
    return node


def _parse_immediate_data(body: list) -> str:
    """Concatenate an immediate node's trailing string atoms."""
    parts: list[str] = []
    for item in body:
        if isinstance(item, str):
            parts.append(item)
        elif isinstance(item, (int, float)):
            parts.append(f"{item:g}")
        elif isinstance(item, Symbol):
            parts.append(item.text)
        else:
            raise FormatError(f"immediate data must be atoms, got {item!r}")
    return "".join(parts)


def _maybe_decode_binary(node: Node, data: str) -> str | bytes:
    """Hex-decode binary immediate data written by the writer."""
    try:
        return bytes.fromhex(data)
    except ValueError:
        return data


def _apply_attributes(node: Node, forms: list) -> None:
    """Install parsed attribute forms onto ``node``."""
    for form in forms:
        head = head_symbol(form)
        if head is None:
            raise FormatError(f"malformed attribute form {form!r}")
        if head == "sync-arc":
            node.attributes.append_value("sync-arc", parse_arc(form))
            continue
        node.attributes.set(head, parse_value(form[1:]))


def parse_value(items: list) -> Any:
    """Decode the items following an attribute name (see module doc)."""
    if not items:
        raise FormatError("attribute has no value")
    if all(not isinstance(item, list) for item in items):
        if len(items) == 1:
            return _scalar(items[0])
        return tuple(_pointer(item) for item in items)
    if len(items) == 1 and head_symbol(items[0]) in _TAGGED_HEADS:
        return _tagged(items[0])
    group: dict[str, Any] = {}
    for item in items:
        head = head_symbol(item)
        if head is None:
            raise FormatError(f"group entries must be (name ...) lists, "
                              f"got {item!r}")
        group[head] = parse_value(item[1:])
    return group


def _scalar(item: object) -> Any:
    """Decode a single atom value."""
    if isinstance(item, Symbol):
        if item.text == "true":
            return True
        if item.text == "false":
            return False
        return item.text
    return item


def _pointer(item: object) -> str:
    if isinstance(item, Symbol):
        return item.text
    if isinstance(item, str):
        return item
    raise FormatError(f"pointer values must be names, got {item!r}")


def _tagged(expression: list) -> Any:
    """Decode a ``(time ...)`` or ``(rect ...)`` tagged value."""
    head = head_symbol(expression)
    if head == "time":
        return parse_time(expression)
    if head == "rect":
        if len(expression) != 5:
            raise FormatError(f"(rect x y w h) expected, got {expression!r}")
        _, x, y, w, h = expression
        return Rect(int(x), int(y), int(w), int(h))
    raise FormatError(f"unknown tagged value ({head} ...)")


def parse_time(expression: object) -> MediaTime:
    """Decode ``(time <value> <unit>)``; a bare number means ms."""
    if isinstance(expression, (int, float)):
        return MediaTime.ms(float(expression))
    if head_symbol(expression) != "time" or len(expression) != 3:
        raise FormatError(f"(time value unit) expected, got {expression!r}")
    _, value, unit = expression
    if not isinstance(value, (int, float)):
        raise FormatError(f"time value must be a number, got {value!r}")
    if not isinstance(unit, Symbol):
        raise FormatError(f"time unit must be a symbol, got {unit!r}")
    return MediaTime(float(value), Unit.from_name(unit.text))


def parse_arc(expression: list) -> SyncArc:
    """Decode a ``(sync-arc ...)`` form into a :class:`SyncArc`."""
    fields: dict[str, list] = {}
    for item in expression[1:]:
        head = head_symbol(item)
        if head is None:
            raise FormatError(f"malformed sync-arc field {item!r}")
        if head in fields:
            raise FormatError(f"duplicate sync-arc field ({head} ...)")
        fields[head] = item[1:]

    def require(name: str) -> list:
        if name not in fields:
            raise FormatError(f"sync-arc is missing its ({name} ...) field")
        return fields[name]

    type_items = require("type")
    if len(type_items) != 2:
        raise FormatError("(type anchor strictness) expected")
    dst_anchor = Anchor.from_name(str(type_items[0]))
    strictness = Strictness.from_name(str(type_items[1]))

    source_items = require("source")
    source = _path(source_items[0])
    src_anchor = Anchor.BEGIN
    if len(source_items) > 1:
        src_anchor = Anchor.from_name(str(source_items[1]))

    destination = _path(require("dest")[0])
    offset = parse_time(require("offset")[0])
    min_delay = parse_time(require("min")[0])
    max_items = require("max")
    if isinstance(max_items[0], Symbol) and max_items[0].text == "inf":
        max_delay = None
    else:
        max_delay = parse_time(max_items[0])

    if "when" in fields:
        return ConditionalArc(
            source=source, destination=destination, src_anchor=src_anchor,
            dst_anchor=dst_anchor, strictness=strictness, offset=offset,
            min_delay=min_delay, max_delay=max_delay,
            condition=str(fields["when"][0]))
    return SyncArc(
        source=source, destination=destination, src_anchor=src_anchor,
        dst_anchor=dst_anchor, strictness=strictness, offset=offset,
        min_delay=min_delay, max_delay=max_delay)


def _path(item: object) -> str:
    """Arc endpoint paths may be quoted strings or bare symbols."""
    if isinstance(item, str):
        return item
    if isinstance(item, Symbol):
        return item.text
    raise FormatError(f"arc path must be a string, got {item!r}")
