"""JSON interchange form for CMIF documents.

The s-expression form is the primary, human-readable syntax; the JSON
form exists for interoperation with tooling that already speaks JSON
(the modern analogue of the paper's advice that descriptors may embed
"well-accepted formats").  Both forms carry identical information and
round-trip through the same document model.

Typed values use tagged objects so JSON's limited type system stays
unambiguous::

    {"$time": [40, "frames"]}
    {"$rect": [0, 0, 320, 200]}
    {"$arc": {"type": "begin/must", ...}}
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.document import CmifDocument
from repro.core.errors import FormatError
from repro.core.nodes import ContainerNode, ImmNode, Node, NodeKind, make_node
from repro.core.syncarc import (Anchor, ConditionalArc, Strictness, SyncArc)
from repro.core.timebase import MediaTime, Unit
from repro.core.values import Rect


def document_to_json(document: CmifDocument, *, indent: int = 2) -> str:
    """Serialize ``document`` to a JSON string."""
    document.sync_root_attributes()
    payload = {"cmif": {"version": 1, "root": node_to_obj(document.root)}}
    return json.dumps(payload, indent=indent, sort_keys=False)


def document_from_json(text: str) -> CmifDocument:
    """Parse a JSON string back into a document."""
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise FormatError(f"invalid JSON: {exc}") from None
    body = payload.get("cmif")
    if not isinstance(body, dict):
        raise FormatError("top-level object must contain a 'cmif' member")
    if body.get("version") != 1:
        raise FormatError(f"unsupported CMIF JSON version "
                          f"{body.get('version')!r}")
    root = node_from_obj(body.get("root"))
    if not isinstance(root, ContainerNode):
        raise FormatError("the root node must be seq or par")
    return CmifDocument.from_root(root)


def node_to_obj(node: Node) -> dict[str, Any]:
    """The JSON object form of one node (recursively)."""
    obj: dict[str, Any] = {"kind": node.kind.value}
    attributes: dict[str, Any] = {}
    arcs: list[dict[str, Any]] = []
    for attribute in node.attributes:
        if attribute.name == "sync-arc":
            arcs = [arc_to_obj(arc) for arc in attribute.value]
            continue
        attributes[attribute.name] = value_to_obj(attribute.value)
    if attributes:
        obj["attributes"] = attributes
    if arcs:
        obj["arcs"] = arcs
    if isinstance(node, ImmNode):
        data = node.data
        if isinstance(data, bytes):
            obj["data"] = {"$hex": data.hex()}
        else:
            obj["data"] = str(data)
    elif node.children:
        obj["children"] = [node_to_obj(child) for child in node.children]
    return obj


def node_from_obj(obj: Any) -> Node:
    """Rebuild a node (recursively) from its JSON object form."""
    if not isinstance(obj, dict) or "kind" not in obj:
        raise FormatError(f"node object expected, got {obj!r}")
    try:
        kind = NodeKind(obj["kind"])
    except ValueError:
        raise FormatError(f"unknown node kind {obj['kind']!r}") from None
    data: Any = None
    if kind is NodeKind.IMM:
        raw = obj.get("data", "")
        if isinstance(raw, dict) and "$hex" in raw:
            data = bytes.fromhex(raw["$hex"])
        else:
            data = raw
    node = make_node(kind, data=data)
    for name, value in (obj.get("attributes") or {}).items():
        node.attributes.set(name, value_from_obj(value))
    for arc_obj in obj.get("arcs") or []:
        node.attributes.append_value("sync-arc", arc_from_obj(arc_obj))
    children = obj.get("children") or []
    if children and not isinstance(node, ContainerNode):
        raise FormatError(f"{kind.value} nodes cannot have children")
    for child_obj in children:
        node.add(node_from_obj(child_obj))  # type: ignore[union-attr]
    return node


def value_to_obj(value: Any) -> Any:
    """Encode one attribute value as JSON-safe data."""
    if isinstance(value, MediaTime):
        return {"$time": [value.value, value.unit.value]}
    if isinstance(value, Rect):
        return {"$rect": [value.x, value.y, value.width, value.height]}
    if isinstance(value, dict):
        return {key: value_to_obj(nested) for key, nested in value.items()}
    if isinstance(value, tuple):
        return {"$pointers": list(value)}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    raise FormatError(f"cannot encode attribute value {value!r} as JSON")


def value_from_obj(value: Any) -> Any:
    """Decode one attribute value from JSON data."""
    if isinstance(value, dict):
        if "$time" in value:
            number, unit = value["$time"]
            return MediaTime(float(number), Unit.from_name(unit))
        if "$rect" in value:
            x, y, w, h = value["$rect"]
            return Rect(int(x), int(y), int(w), int(h))
        if "$pointers" in value:
            return tuple(str(item) for item in value["$pointers"])
        return {key: value_from_obj(nested)
                for key, nested in value.items()}
    return value


def arc_to_obj(arc: SyncArc) -> dict[str, Any]:
    """Encode an arc as a JSON object with the figure-9 fields."""
    obj: dict[str, Any] = {
        "type": arc.type_field(),
        "source": arc.source,
        "src_anchor": arc.src_anchor.value,
        "offset": value_to_obj(arc.offset),
        "destination": arc.destination,
        "min_delay": value_to_obj(arc.min_delay),
        "max_delay": (None if arc.max_delay is None
                      else value_to_obj(arc.max_delay)),
    }
    if isinstance(arc, ConditionalArc):
        obj["when"] = arc.condition
    return obj


def arc_from_obj(obj: Any) -> SyncArc:
    """Decode an arc from its JSON object form."""
    if not isinstance(obj, dict):
        raise FormatError(f"arc object expected, got {obj!r}")
    try:
        dst_anchor_name, strictness_name = str(obj["type"]).split("/")
    except (KeyError, ValueError):
        raise FormatError(f"arc type must be 'anchor/strictness', "
                          f"got {obj.get('type')!r}") from None
    common = dict(
        source=str(obj.get("source", "")),
        destination=str(obj.get("destination", "")),
        src_anchor=Anchor.from_name(obj.get("src_anchor", "begin")),
        dst_anchor=Anchor.from_name(dst_anchor_name),
        strictness=Strictness.from_name(strictness_name),
        offset=_time_from(obj.get("offset", 0)),
        min_delay=_time_from(obj.get("min_delay", 0)),
        max_delay=(None if obj.get("max_delay") is None
                   else _time_from(obj["max_delay"])),
    )
    if "when" in obj:
        return ConditionalArc(condition=str(obj["when"]), **common)
    return SyncArc(**common)


def _time_from(value: Any) -> MediaTime:
    decoded = value_from_obj(value)
    if isinstance(decoded, MediaTime):
        return decoded
    if isinstance(decoded, (int, float)):
        return MediaTime.ms(float(decoded))
    raise FormatError(f"time value expected, got {value!r}")
