"""Serializing documents to the concrete CMIF text form.

The writer emits the s-expression syntax described in
:mod:`repro.format.sexpr`, structured exactly along paper figure 6::

    (cmif (version 1)
      (seq (attributes (name "news") ...)
        (par (attributes ...) child ...)
        (ext (attributes (file "head.vid") ...))
        (imm (attributes (channel "label")) "Story 3. Paintings")))

Attribute values map to tagged forms: media times as ``(time 4 s)``,
rectangles as ``(rect x y w h)``, nested groups as nested lists, pointer
sets as bare symbols, and synchronization arcs as ``(sync-arc ...)``
forms carrying the six figure-9 fields.  The writer and the parser are
exact inverses; round-trip identity is property-tested.
"""

from __future__ import annotations

from typing import Any

from repro.core.document import CmifDocument
from repro.core.errors import FormatError
from repro.core.nodes import ImmNode, Node
from repro.core.syncarc import ConditionalArc, SyncArc
from repro.core.timebase import MediaTime
from repro.core.values import Rect
from repro.format.sexpr import Symbol, dump

#: Attribute names whose values the writer re-derives from document
#: dictionaries; they are synced onto the root before writing.
FORMAT_VERSION = 1


def write_document(document: CmifDocument) -> str:
    """Serialize ``document`` to concrete CMIF text."""
    document.sync_root_attributes()
    expression = [
        Symbol("cmif"),
        [Symbol("version"), FORMAT_VERSION],
        node_expression(document.root),
    ]
    return dump(expression) + "\n"


def node_expression(node: Node) -> list:
    """The s-expression form of one node (recursively)."""
    expression: list[Any] = [Symbol(node.kind.value)]
    attribute_forms = attributes_expression(node)
    if attribute_forms:
        expression.append([Symbol("attributes"), *attribute_forms])
    if isinstance(node, ImmNode):
        expression.append(_immediate_data(node))
    else:
        for child in node.children:
            expression.append(node_expression(child))
    return expression


def _immediate_data(node: ImmNode) -> str:
    """Immediate node data serialized as a string literal."""
    data = node.data
    if isinstance(data, bytes):
        # Binary immediate data travels hex-encoded; the medium attribute
        # tells the reader how to interpret it.
        return data.hex()
    return str(data)


def attributes_expression(node: Node) -> list[list]:
    """All attribute forms of a node, one list per (name, value)."""
    forms: list[list] = []
    for attribute in node.attributes:
        if attribute.name == "sync-arc":
            for arc in attribute.value:
                forms.append(arc_expression(arc))
            continue
        forms.append([Symbol(attribute.name),
                      *value_items(attribute.value)])
    return forms


#: Words the reader assigns special meaning; never written bare.
_RESERVED_WORDS = frozenset({"true", "false", "inf", "nan", "infinity"})

_UNSAFE_CHARS = set('()";')


def _atom(value: str):
    """A string as its canonical atom: a bare symbol when unambiguous.

    Symbols and quoted strings both decode to ``str``, so the writer is
    free to choose; bare symbols keep ids readable, but anything that
    would re-read as a number, a reserved word, or that contains
    delimiter characters must stay quoted for the round trip to be the
    identity.
    """
    if (value
            and not any(ch.isspace() for ch in value)
            and not _UNSAFE_CHARS & set(value)
            and value.lower() not in _RESERVED_WORDS
            and not _reads_as_number(value)):
        return Symbol(value)
    return value


def _reads_as_number(word: str) -> bool:
    try:
        float(word)
    except ValueError:
        return False
    return True


def value_items(value: Any) -> list:
    """Encode an attribute value as the items following its name."""
    if isinstance(value, MediaTime):
        return [time_expression(value)]
    if isinstance(value, Rect):
        return [[Symbol("rect"), value.x, value.y, value.width,
                 value.height]]
    if isinstance(value, dict):
        return [group_entry(key, nested) for key, nested in value.items()]
    if isinstance(value, tuple):
        if len(value) == 1:
            # A one-element pointer set must stay distinguishable from a
            # scalar; quote it so it reads back as a plain string and
            # style lookup (which accepts both) still works.
            return [_atom(str(value[0]))]
        return [_atom(str(item)) for item in value]
    if isinstance(value, bool):
        return [Symbol("true" if value else "false")]
    if isinstance(value, (int, float)):
        return [value]
    if isinstance(value, str):
        return [_atom(value)]
    raise FormatError(f"cannot serialize attribute value {value!r}")


def group_entry(key: str, value: Any) -> list:
    """One ``(key ...)`` entry of a group value."""
    return [Symbol(key), *value_items(value)]


def time_expression(time: MediaTime) -> list:
    """``(time <value> <unit>)``."""
    value: int | float = time.value
    if isinstance(value, float) and value.is_integer():
        value = int(value)
    return [Symbol("time"), value, Symbol(time.unit.value)]


def arc_expression(arc: SyncArc) -> list:
    """The ``(sync-arc ...)`` form carrying all figure-9 fields."""
    expression: list[Any] = [
        Symbol("sync-arc"),
        [Symbol("type"), Symbol(arc.dst_anchor.value),
         Symbol(arc.strictness.value)],
        [Symbol("source"), arc.source, Symbol(arc.src_anchor.value)],
        [Symbol("offset"), time_expression(arc.offset)],
        [Symbol("dest"), arc.destination],
        [Symbol("min"), time_expression(arc.min_delay)],
        [Symbol("max"), (Symbol("inf") if arc.max_delay is None
                         else time_expression(arc.max_delay))],
    ]
    if isinstance(arc, ConditionalArc):
        expression.append([Symbol("when"), arc.condition])
    return expression
