"""Document requirement profiles: negotiation's compiled form.

The paper's transportability claim is that a document carries enough
structure for "a given system to determine whether it can support the
requested document or not".  The seed implementation re-derived that
structure on every :func:`~repro.transport.negotiate.negotiate` call —
a full tree walk per environment, so negotiating one document against
N environments (the serving engine's admission path) walked the tree N
times.

This module splits the derivation out: a :class:`DocumentRequirements`
profile is computed once per document *revision* (and cached in a
:class:`RequirementsCache`), after which negotiating against any number
of environments is pure arithmetic over the profile.  The profile also
carries per-descriptor :class:`DescriptorDemand` rows, which is what
lets negotiation be *honest* about ``playable-with-filtering``: the
bandwidth verdict is no longer "some filter might help" but "the
constraint filter's own planning math projects a post-adaptation
bandwidth that fits" — the same math
:class:`~repro.pipeline.filters.ConstraintFilter` uses to emit actions,
so a filterable verdict is a promise the filter keeps.

The planned-parameter helpers (:func:`planned_resolution`,
:func:`planned_color_depth`, :func:`quantized_rate`, …) are the single
source of truth for what each filtering maps *to*; the filter stage,
the adaptation compiler and the negotiation projection all read them,
so the three layers cannot drift apart.
"""

from __future__ import annotations

import collections
import math
from dataclasses import dataclass
from functools import cached_property

from repro.core.channels import Medium
from repro.core.document import CmifDocument
from repro.core.errors import SyncArcError, ValueError_
from repro.core.syncarc import ConditionalArc, Strictness
from repro.core.tree import iter_preorder
from repro.transport.environments import SystemEnvironment


# -- planned-parameter math (shared with the constraint filter) -----------

def planned_resolution(width: int, height: int,
                       environment: SystemEnvironment
                       ) -> tuple[int, int] | None:
    """The scale-resolution target, or None when the source fits."""
    if width <= environment.screen_width \
            and height <= environment.screen_height:
        return None
    scale = min(environment.screen_width / width,
                environment.screen_height / height)
    return (max(1, int(width * scale)), max(1, int(height * scale)))


def planned_color_depth(depth: int,
                        environment: SystemEnvironment) -> int | None:
    """The reduced colour depth, or None when the source fits.

    Mirrors the filter exactly: a <=1-bit display goes monochrome,
    anything else reduces to ``max(1, depth // 3)`` bits per channel.
    """
    if depth <= environment.color_depth:
        return None
    if environment.color_depth <= 1:
        return 1
    return max(1, environment.color_depth // 3) * 3


def quantized_rate(rate: float, target: float) -> float:
    """``rate`` reduced by an integer subsampling step to <= ``target``.

    Both rate filters keep every n-th frame/sample window, so the
    achievable rates are ``rate / n`` for integer n; rounding the step
    *up* guarantees the achieved rate never exceeds the target (the
    filter's promise to negotiation).  The epsilon absorbs float noise
    so a target that *is* an achievable rate maps onto itself — filter
    actions carry achieved rates as their targets and must be
    idempotent.
    """
    if target >= rate:
        return rate
    return rate / math.ceil(rate / target - 1e-9)


def planned_frame_rate(rate: float,
                       environment: SystemEnvironment) -> float | None:
    """The subsampled frame rate, or None when no device cut is needed."""
    if rate > environment.max_frame_rate > 0:
        return quantized_rate(rate, environment.max_frame_rate)
    return None


def planned_sample_rate(rate: float,
                        environment: SystemEnvironment) -> float | None:
    """The downsampled audio rate, or None when no device cut is needed."""
    if rate > environment.max_sample_rate > 0:
        return quantized_rate(rate, environment.max_sample_rate)
    return None


def planned_audio_channels(channels: int,
                           environment: SystemEnvironment) -> int | None:
    """The merged channel count, or None when the layout fits."""
    if channels > environment.audio_channels >= 1:
        return environment.audio_channels
    return None


# -- per-descriptor demand rows -------------------------------------------

@dataclass(frozen=True)
class DescriptorDemand:
    """One distinct descriptor's resource demand, with its use count.

    ``uses`` preserves the seed's per-event bandwidth accounting: a
    descriptor placed on three events contributes its stream three
    times to the summed worst-case bandwidth.
    """

    descriptor_id: str
    medium: Medium
    uses: int
    resolution: tuple[int, int] | None
    color_depth: int
    frame_rate: float
    sample_rate: float
    audio_channels: int
    bandwidth_bps: int


@dataclass(frozen=True)
class PlannedAdaptation:
    """What the constraint filter will do to one descriptor, projected.

    ``None`` fields mean "left as captured".  ``bandwidth_bps`` is the
    projected per-use stream bandwidth after every planned change —
    the value the adapted descriptor will actually carry, so the
    projection and the adaptation cannot disagree.
    """

    demand: DescriptorDemand
    dropped: bool = False
    resolution: tuple[int, int] | None = None
    color_depth: int | None = None
    frame_rate: float | None = None
    sample_rate: float | None = None
    audio_channels: int | None = None
    bandwidth_bps: int = 0

    @property
    def changed(self) -> bool:
        """True when any filtering applies to this descriptor."""
        return self.dropped or any(
            value is not None for value in (
                self.resolution, self.color_depth, self.frame_rate,
                self.sample_rate, self.audio_channels))


def projected_bandwidth_bps(demand: DescriptorDemand,
                            resolution: tuple[int, int] | None,
                            color_depth: int | None,
                            frame_rate: float | None,
                            sample_rate: float | None,
                            audio_channels: int | None) -> int:
    """One descriptor's per-use bandwidth after the given changes.

    Streams scale linearly in each reduced dimension (pixels, depth,
    rate, channels); this is the single formula negotiation projects
    with and the adaptation writes back into descriptor attributes.
    """
    ratio = 1.0
    if resolution is not None and demand.resolution:
        width, height = demand.resolution
        ratio *= (resolution[0] * resolution[1]) / (width * height)
    if color_depth is not None and demand.color_depth > 0:
        ratio *= color_depth / demand.color_depth
    if frame_rate is not None and demand.frame_rate > 0:
        ratio *= frame_rate / demand.frame_rate
    if sample_rate is not None and demand.sample_rate > 0:
        ratio *= sample_rate / demand.sample_rate
    if audio_channels is not None and demand.audio_channels > 0:
        ratio *= audio_channels / demand.audio_channels
    return int(demand.bandwidth_bps * ratio)


def _device_adaptation(demand: DescriptorDemand,
                       environment: SystemEnvironment) -> PlannedAdaptation:
    """The device-capability cuts for one descriptor (no bandwidth yet)."""
    if not environment.supports(demand.medium):
        return PlannedAdaptation(demand=demand, dropped=True,
                                 bandwidth_bps=0)
    resolution = None
    color_depth = None
    frame_rate = None
    sample_rate = None
    audio_channels = None
    if demand.medium in (Medium.IMAGE, Medium.VIDEO):
        if demand.resolution:
            resolution = planned_resolution(demand.resolution[0],
                                            demand.resolution[1],
                                            environment)
        if demand.color_depth:
            color_depth = planned_color_depth(demand.color_depth,
                                              environment)
    if demand.medium is Medium.VIDEO and demand.frame_rate:
        frame_rate = planned_frame_rate(demand.frame_rate, environment)
    if demand.medium is Medium.AUDIO:
        if demand.sample_rate:
            sample_rate = planned_sample_rate(demand.sample_rate,
                                              environment)
        if demand.audio_channels:
            audio_channels = planned_audio_channels(demand.audio_channels,
                                                    environment)
    return PlannedAdaptation(
        demand=demand, resolution=resolution, color_depth=color_depth,
        frame_rate=frame_rate, sample_rate=sample_rate,
        audio_channels=audio_channels,
        bandwidth_bps=projected_bandwidth_bps(
            demand, resolution, color_depth, frame_rate, sample_rate,
            audio_channels))


@dataclass(frozen=True)
class EnvironmentPlan:
    """The projected adaptation of one document for one environment.

    ``achievable`` is the honesty bit behind the bandwidth verdict:
    True when the planned (device + bandwidth-pressure) adaptations
    bring the summed stream bandwidth inside the environment's budget.
    """

    environment_name: str
    adaptations: tuple[PlannedAdaptation, ...]
    projected_bandwidth_bps: int
    achievable: bool

    @cached_property
    def by_descriptor(self) -> dict[str, PlannedAdaptation]:
        return {adaptation.demand.descriptor_id: adaptation
                for adaptation in self.adaptations}

    def adaptation_for(self, descriptor_id: str
                       ) -> PlannedAdaptation | None:
        return self.by_descriptor.get(descriptor_id)


def plan_adaptations(demands: tuple[DescriptorDemand, ...],
                     environment: SystemEnvironment) -> EnvironmentPlan:
    """Project the filter's adaptations for every descriptor demand.

    Two passes.  First, device-capability cuts (screen, depth, device
    rates, channel layout — plus dropping unsupported media).  Second,
    when the projected summed bandwidth still exceeds the environment's
    budget, *bandwidth pressure*: every rate-bearing stream is
    subsampled further by a common factor chosen so the projection
    fits.  Rate cuts quantize to integer steps (``quantized_rate``),
    which can only undershoot the common factor, so a fitting plan is
    guaranteed to actually fit.  When even that cannot fit — the
    rate-less residue alone exceeds the budget — the plan is marked
    unachievable and negotiation reports the bandwidth requirement as
    unfilterable.
    """
    planned = [_device_adaptation(demand, environment)
               for demand in demands]
    total = sum(adaptation.bandwidth_bps * adaptation.demand.uses
                for adaptation in planned)
    budget = environment.bandwidth_bps
    if total <= budget:
        return EnvironmentPlan(environment_name=environment.name,
                               adaptations=tuple(planned),
                               projected_bandwidth_bps=total,
                               achievable=True)

    def current_rate(adaptation: PlannedAdaptation) -> float:
        demand = adaptation.demand
        if demand.frame_rate > 0:
            return (adaptation.frame_rate if adaptation.frame_rate
                    is not None else demand.frame_rate)
        if demand.sample_rate > 0:
            return (adaptation.sample_rate if adaptation.sample_rate
                    is not None else demand.sample_rate)
        return 0.0

    reducible = [adaptation for adaptation in planned
                 if not adaptation.dropped
                 and adaptation.bandwidth_bps > 0
                 and current_rate(adaptation) > 0]
    reducible_total = sum(adaptation.bandwidth_bps
                          * adaptation.demand.uses
                          for adaptation in reducible)
    fixed = total - reducible_total
    if not reducible or fixed >= budget:
        return EnvironmentPlan(environment_name=environment.name,
                               adaptations=tuple(planned),
                               projected_bandwidth_bps=total,
                               achievable=False)

    pressure = (budget - fixed) / reducible_total
    squeezed: dict[int, PlannedAdaptation] = {}
    for adaptation in reducible:
        demand = adaptation.demand
        rate = current_rate(adaptation)
        target = rate * pressure
        if demand.frame_rate > 0:
            frame_rate = quantized_rate(demand.frame_rate, target)
            replacement = PlannedAdaptation(
                demand=demand, resolution=adaptation.resolution,
                color_depth=adaptation.color_depth,
                frame_rate=frame_rate,
                sample_rate=adaptation.sample_rate,
                audio_channels=adaptation.audio_channels,
                bandwidth_bps=projected_bandwidth_bps(
                    demand, adaptation.resolution,
                    adaptation.color_depth, frame_rate,
                    adaptation.sample_rate, adaptation.audio_channels))
        else:
            sample_rate = quantized_rate(demand.sample_rate, target)
            replacement = PlannedAdaptation(
                demand=demand, resolution=adaptation.resolution,
                color_depth=adaptation.color_depth,
                frame_rate=adaptation.frame_rate,
                sample_rate=sample_rate,
                audio_channels=adaptation.audio_channels,
                bandwidth_bps=projected_bandwidth_bps(
                    demand, adaptation.resolution,
                    adaptation.color_depth, adaptation.frame_rate,
                    sample_rate, adaptation.audio_channels))
        squeezed[id(adaptation)] = replacement
    final = tuple(squeezed.get(id(adaptation), adaptation)
                  for adaptation in planned)
    projected = sum(adaptation.bandwidth_bps * adaptation.demand.uses
                    for adaptation in final)
    return EnvironmentPlan(environment_name=environment.name,
                           adaptations=final,
                           projected_bandwidth_bps=projected,
                           achievable=projected <= budget)


# -- the document profile --------------------------------------------------

@dataclass(frozen=True)
class DocumentRequirements:
    """Everything negotiation needs, derived once per document revision.

    Aggregate fields keep the seed semantics bit-for-bit (maxima over
    all descriptors, bandwidth summed per event use); ``demands`` adds
    the per-descriptor rows the bandwidth projection and the adaptation
    compiler share.
    """

    revision: int
    media: frozenset[Medium]
    max_resolution: tuple[int, int]
    color_depth: int
    frame_rate: float
    sample_rate: float
    audio_channels: int
    bandwidth_bps: int
    tightest_must_epsilon_ms: float | None
    demands: tuple[DescriptorDemand, ...]

    def worst_latency_ms(self, environment: SystemEnvironment) -> float:
        """The worst per-medium start latency among used media."""
        return max((environment.latency_for(medium)
                    for medium in self.media), default=0.0)

    def plan_for(self, environment: SystemEnvironment) -> EnvironmentPlan:
        """The projected adaptation plan under ``environment``.

        Memoized per environment fingerprint on the (frozen, cached-
        per-revision) profile: admission negotiates and filter-plans
        every tenant session of a (document, environment) pair, and
        all of them share one projection.
        """
        plans = self.__dict__.setdefault("_plans", {})
        key = environment.fingerprint()
        plan = plans.get(key)
        if plan is None:
            plan = plan_adaptations(self.demands, environment)
            plans[key] = plan
        return plan

    def as_dict(self) -> dict[str, object]:
        """The seed's ``document_requirements`` mapping shape."""
        return {
            "media": set(self.media),
            "max_resolution": self.max_resolution,
            "color_depth": self.color_depth,
            "frame_rate": self.frame_rate,
            "sample_rate": self.sample_rate,
            "audio_channels": self.audio_channels,
            "bandwidth_bps": self.bandwidth_bps,
            "tightest_must_epsilon_ms": self.tightest_must_epsilon_ms,
        }


def _tightest_must_window(document: CmifDocument) -> float | None:
    """The smallest finite max-delay among must arcs, if any."""
    tightest: float | None = None
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            if isinstance(arc, ConditionalArc):
                continue
            if arc.strictness is not Strictness.MUST:
                continue
            try:
                _delta, epsilon = arc.window_ms(document.timebase)
            except SyncArcError:
                continue
            if epsilon is None:
                continue
            if tightest is None or epsilon < tightest:
                tightest = epsilon
    return tightest


def compute_requirements(document: CmifDocument,
                         compiled=None) -> DocumentRequirements:
    """Derive the full requirement profile (one tree walk + compile).

    ``compiled`` skips the re-compile when the caller already holds the
    document's :class:`~repro.core.document.CompiledDocument`.
    """
    media: set[Medium] = set()
    max_width = 0
    max_height = 0
    color_depth = 0
    frame_rate = 0.0
    sample_rate = 0.0
    audio_channels = 0
    bandwidth = 0
    uses: collections.Counter[str] = collections.Counter()
    descriptors: dict[str, tuple] = {}
    if compiled is None:
        compiled = document.compile()
    for event in compiled.events:
        media.add(event.medium)
        descriptor = event.descriptor
        if descriptor is None:
            continue
        resolution = descriptor.get("resolution")
        if resolution:
            width, height = resolution
            max_width = max(max_width, int(width))
            max_height = max(max_height, int(height))
        color_depth = max(color_depth, int(descriptor.get("color-depth", 0)))
        frame_rate = max(frame_rate, float(descriptor.get("frame-rate", 0.0)))
        sample_rate = max(sample_rate,
                          float(descriptor.get("sample-rate", 0.0)))
        audio_channels = max(audio_channels,
                             int(descriptor.get("channels", 0)))
        resources = descriptor.get("resources", {})
        bandwidth += int(resources.get("bandwidth-bps", 0))
        uses[descriptor.descriptor_id] += 1
        if descriptor.descriptor_id not in descriptors:
            descriptors[descriptor.descriptor_id] = (descriptor,
                                                     event.medium)
    demands = tuple(
        DescriptorDemand(
            descriptor_id=descriptor_id,
            medium=medium,
            uses=uses[descriptor_id],
            resolution=(tuple(int(side) for side
                              in descriptor.get("resolution"))
                        if descriptor.get("resolution") else None),
            color_depth=int(descriptor.get("color-depth", 0)),
            frame_rate=float(descriptor.get("frame-rate", 0.0)),
            sample_rate=float(descriptor.get("sample-rate", 0.0)),
            audio_channels=int(descriptor.get("channels", 0)),
            bandwidth_bps=int(descriptor.get("resources", {})
                              .get("bandwidth-bps", 0)),
        )
        for descriptor_id, (descriptor, medium) in descriptors.items())
    return DocumentRequirements(
        revision=document.revision,
        media=frozenset(media),
        max_resolution=(max_width, max_height),
        color_depth=color_depth,
        frame_rate=frame_rate,
        sample_rate=sample_rate,
        audio_channels=audio_channels,
        bandwidth_bps=bandwidth,
        tightest_must_epsilon_ms=_tightest_must_window(document),
        demands=demands,
    )


class RequirementsCache:
    """Requirement profiles keyed by (document identity, revision).

    The admission path negotiates every arriving document against every
    environment profile; this cache makes the tree walk a once-per-
    revision cost.  Entries pin their document so ``id()`` reuse is
    impossible, and any edit (revision bump) moves the key — the same
    discipline the schedule and program caches follow.
    """

    def __init__(self, capacity: int = 64) -> None:
        if capacity <= 0:
            raise ValueError_(f"requirements cache capacity must be "
                              f"positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: collections.OrderedDict[
            tuple, tuple[CmifDocument, DocumentRequirements]] = \
            collections.OrderedDict()

    @staticmethod
    def _key(document: CmifDocument) -> tuple:
        return (id(document), document.revision)

    def requirements_for(self, document: CmifDocument,
                         compiled=None) -> DocumentRequirements:
        """The document's profile, derived at most once per revision."""
        key = self._key(document)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        profile = compute_requirements(document, compiled)
        self._entries[key] = (document, profile)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return profile

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        return (f"requirements cache: {len(self._entries)} entr(y/ies), "
                f"{self.hits} hit(s), {self.misses} miss(es)")


def requirements_for(document: CmifDocument, *,
                     cache: RequirementsCache | None = None,
                     compiled=None) -> DocumentRequirements:
    """The document's requirement profile, through a cache when given."""
    if cache is not None:
        return cache.requirements_for(document, compiled)
    return compute_requirements(document, compiled)
