"""Target system environments (paper sections 1, 2 and 5.3.3).

Transportability means "the document structure can be accessed across
system environments independently of individual component input or
output dependencies"; whether a given system can *present* a document is
a separate question CMIF only supplies the structured basis for ("a
given system can determine whether it can support the requested document
or not").

:class:`SystemEnvironment` is that capability description: display
geometry and colour depth, video frame rate, audio channels and rates,
stream bandwidth, per-medium start latency (the device characteristic
behind conflict class 2), and the supported media set.  Profiles for the
classes of machine the paper's era distinguished — high-end workstation,
modest personal system, audio-less terminal — ship as ready-made
constants for the benches and examples.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace

from repro.core.channels import Medium
from repro.core.errors import DeviceConstraintError


class LatencyMap(Mapping):
    """An immutable, hashable per-medium latency table.

    :class:`SystemEnvironment` is ``frozen=True`` so instances can key
    the serving-layer caches (program cache, adaptation cache, session
    stats) — which requires every field to be hashable.  A plain dict
    field silently broke that contract; this wrapper keeps the mapping
    interface (``[]``, ``get``, iteration) while making mutation a
    ``TypeError`` and equality/hashing order-independent.
    """

    __slots__ = ("_data", "_hash")

    def __init__(self, data: Mapping[Medium, float] | None = None) -> None:
        object.__setattr__(self, "_data", dict(data or {}))
        object.__setattr__(self, "_hash", None)

    def __getitem__(self, medium: Medium) -> float:
        return self._data[medium]

    def __iter__(self):
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __hash__(self) -> int:
        if self._hash is None:
            object.__setattr__(self, "_hash",
                               hash(frozenset(self._data.items())))
        return self._hash

    def __eq__(self, other: object) -> bool:
        if isinstance(other, LatencyMap):
            return self._data == other._data
        if isinstance(other, Mapping):
            return self._data == dict(other)
        return NotImplemented

    def __setattr__(self, name: str, value: object) -> None:
        raise TypeError("LatencyMap is immutable")

    def __reduce__(self):
        # Copy/pickle must reconstruct through __init__: the default
        # slotted-state path would setattr on the frozen instance.
        return (LatencyMap, (self._data,))

    def __repr__(self) -> str:
        return f"LatencyMap({self._data!r})"


@dataclass(frozen=True)
class SystemEnvironment:
    """A target presentation environment's capabilities."""

    name: str
    screen_width: int = 1280
    screen_height: int = 1024
    color_depth: int = 24
    max_frame_rate: float = 25.0
    audio_channels: int = 2
    max_sample_rate: float = 44100.0
    bandwidth_bps: int = 10_000_000
    supported_media: frozenset[Medium] = frozenset(Medium)
    #: Worst-case start latency per medium, in milliseconds; the player's
    #: device model and the class-2 conflict detector read these.  Any
    #: mapping passed in is frozen into a :class:`LatencyMap` so the
    #: environment stays hashable (cache-keyable) as a whole.
    start_latency_ms: Mapping[Medium, float] = field(
        default_factory=LatencyMap)
    jitter_ms: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.start_latency_ms, LatencyMap):
            object.__setattr__(self, "start_latency_ms",
                               LatencyMap(self.start_latency_ms))
        if self.screen_width < 0 or self.screen_height < 0:
            raise DeviceConstraintError(
                f"screen size cannot be negative: "
                f"{self.screen_width}x{self.screen_height}")
        if self.color_depth not in (0, 1, 8, 16, 24):
            raise DeviceConstraintError(
                f"unsupported color depth {self.color_depth}")
        if self.audio_channels < 0:
            raise DeviceConstraintError("audio channel count cannot be "
                                        "negative")

    @property
    def has_display(self) -> bool:
        """True when the environment can show anything at all."""
        return self.screen_width > 0 and self.screen_height > 0

    @property
    def has_audio(self) -> bool:
        """True when the environment can play sound."""
        return self.audio_channels > 0

    def supports(self, medium: Medium) -> bool:
        """True when the environment supports ``medium`` at all."""
        if medium not in self.supported_media:
            return False
        if medium is Medium.AUDIO:
            return self.has_audio
        if medium in (Medium.VIDEO, Medium.IMAGE, Medium.TEXT):
            return self.has_display
        return True

    def latency_for(self, medium: Medium) -> float:
        """Worst-case start latency for ``medium`` in milliseconds."""
        return self.start_latency_ms.get(medium, 0.0)

    def latency_table(self, media) -> tuple[float, ...]:
        """Start latencies for an ordered media set, as a flat table.

        The compiled playback layer indexes media once per program and
        looks latencies up by position per environment, so the per-run
        loop never touches the ``start_latency_ms`` dict.
        """
        return tuple(self.latency_for(medium) for medium in media)

    def degraded(self, **changes) -> "SystemEnvironment":
        """A copy with some capabilities changed (for sweeps)."""
        return replace(self, **changes)

    def fingerprint(self) -> tuple:
        """A stable capability identity, for cache keys.

        Deliberately excludes :attr:`name`: two differently-named but
        capability-identical environments negotiate, filter and compile
        identically, so the serving caches (program cache, adaptation
        cache) should share one entry between them.  Everything that can
        influence negotiation, filtering or playback is included.
        """
        return (
            self.screen_width, self.screen_height, self.color_depth,
            self.max_frame_rate, self.audio_channels,
            self.max_sample_rate, self.bandwidth_bps,
            tuple(sorted(medium.value for medium in self.supported_media)),
            tuple(sorted((medium.value, latency) for medium, latency
                         in self.start_latency_ms.items())),
            self.jitter_ms,
        )


def _latencies(text: float = 1.0, audio: float = 5.0, video: float = 20.0,
               image: float = 10.0) -> dict[Medium, float]:
    return {
        Medium.TEXT: text,
        Medium.AUDIO: audio,
        Medium.VIDEO: video,
        Medium.IMAGE: image,
        Medium.PROGRAM: 50.0,
    }


#: A 1991 high-end workstation: the authors' SGI-class reference target.
WORKSTATION = SystemEnvironment(
    name="workstation",
    screen_width=1280, screen_height=1024, color_depth=24,
    max_frame_rate=25.0, audio_channels=2, max_sample_rate=44100.0,
    bandwidth_bps=10_000_000,
    start_latency_ms=_latencies(),
    jitter_ms=2.0,
)

#: A modest personal system: smaller 8-bit display, mono audio, slower
#: devices — the machine the constraint filters exist for.
PERSONAL_SYSTEM = SystemEnvironment(
    name="personal-system",
    screen_width=640, screen_height=480, color_depth=8,
    max_frame_rate=12.5, audio_channels=1, max_sample_rate=22050.0,
    bandwidth_bps=1_000_000,
    start_latency_ms=_latencies(text=5.0, audio=20.0, video=80.0,
                                image=40.0),
    jitter_ms=10.0,
)

#: A text terminal with no audio: the degenerate case the paper's flying
#: bird aside mentions ("impossible ... if the target system had no
#: display") inverted — here there is a display but no sound path.
SILENT_TERMINAL = SystemEnvironment(
    name="silent-terminal",
    screen_width=800, screen_height=600, color_depth=1,
    max_frame_rate=0.0, audio_channels=0, max_sample_rate=0.0,
    bandwidth_bps=64_000,
    supported_media=frozenset({Medium.TEXT, Medium.IMAGE}),
    start_latency_ms=_latencies(text=2.0, audio=0.0, video=0.0, image=60.0),
    jitter_ms=5.0,
)

#: All ready-made profiles, for sweeps.
PROFILES = (WORKSTATION, PERSONAL_SYSTEM, SILENT_TERMINAL)
