"""Document/environment capability negotiation (paper section 1).

"What CMIF can provide ... is a structured basis upon which a given
system can determine whether it can support the requested document or
not."  :func:`negotiate` performs that determination from descriptors
alone: the document's requirements (media used, resolutions, rates,
bandwidth, hard-synchronization tightness) are derived once per
document revision as a
:class:`~repro.transport.requirements.DocumentRequirements` profile,
then checked against a
:class:`~repro.transport.environments.SystemEnvironment`, returning a
structured verdict with per-requirement findings.  Negotiating one
document against N environments therefore walks the tree once, not N
times — the serving engine's admission path relies on this.

Three verdicts are possible, mirroring the pipeline's options:

* ``playable`` — every requirement is met natively;
* ``playable-with-filtering`` — unmet requirements can all be resolved
  by the constraint-filter stage (colour reduction, scaling,
  sub-sampling, channel merging);
* ``unplayable`` — some requirement has no filter (a required medium is
  entirely unsupported, a must arc is tighter than the device latency,
  or the bandwidth projection shows no achievable filtering).

Verdicts are *honest*: a finding is only marked filterable when the
constraint filter's own planning math — shared through
:mod:`repro.transport.requirements` — can actually resolve it, so a
``playable-with-filtering`` document re-negotiates as ``playable``
after its filter plan is applied.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.core.document import CmifDocument
from repro.transport.environments import SystemEnvironment
from repro.transport.requirements import (DocumentRequirements,
                                          RequirementsCache,
                                          requirements_for)

PLAYABLE = "playable"
FILTERABLE = "playable-with-filtering"
UNPLAYABLE = "unplayable"


@dataclass(frozen=True)
class Finding:
    """One requirement check: what the document needs vs what exists."""

    requirement: str
    needed: str
    available: str
    satisfied: bool
    filterable: bool = False

    def __str__(self) -> str:
        state = ("ok" if self.satisfied
                 else "filterable" if self.filterable else "unmet")
        return (f"{self.requirement}: needs {self.needed}, "
                f"has {self.available} [{state}]")

    def to_obj(self) -> dict[str, object]:
        """The machine-readable form (CLI ``negotiate --json``)."""
        return {
            "requirement": self.requirement,
            "needed": self.needed,
            "available": self.available,
            "satisfied": self.satisfied,
            "filterable": self.filterable,
        }


@dataclass
class NegotiationResult:
    """The structured verdict of a negotiation."""

    environment: str
    verdict: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True unless the document is unplayable."""
        return self.verdict != UNPLAYABLE

    def summary(self) -> str:
        lines = [f"negotiation against {self.environment}: {self.verdict}"]
        lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)

    def to_obj(self) -> dict[str, object]:
        """The machine-readable form (CLI ``negotiate --json``)."""
        return {
            "environment": self.environment,
            "verdict": self.verdict,
            "ok": self.ok,
            "findings": [finding.to_obj() for finding in self.findings],
        }

    def to_json(self, indent: int | None = 1) -> str:
        return json.dumps(self.to_obj(), indent=indent)


def document_requirements(document: CmifDocument) -> dict[str, object]:
    """Derive a document's requirements from descriptors only.

    Returns media set, maximum resolution, colour depth, frame and
    sample rates, audio channel count, summed worst-case bandwidth, and
    the tightest must-arc window.  Kept as the seed's mapping shape;
    the structured (and cacheable) form is
    :func:`repro.transport.requirements.requirements_for`.
    """
    return requirements_for(document).as_dict()


def negotiate(document: CmifDocument,
              environment: SystemEnvironment, *,
              requirements: DocumentRequirements | None = None,
              cache: RequirementsCache | None = None) -> NegotiationResult:
    """Check ``document`` against ``environment``; never raises.

    ``requirements`` short-circuits the profile derivation when the
    caller already holds one (the serving engine); ``cache`` makes the
    derivation once-per-revision without the caller managing profiles.
    """
    if requirements is None:
        requirements = requirements_for(document, cache=cache)
    findings: list[Finding] = []

    for medium in sorted(requirements.media, key=lambda m: m.value):
        supported = environment.supports(medium)
        findings.append(Finding(
            requirement=f"medium:{medium.value}",
            needed="supported",
            available="supported" if supported else "unsupported",
            satisfied=supported,
            filterable=False,
        ))

    width, height = requirements.max_resolution
    if width and height:
        fits = (width <= environment.screen_width
                and height <= environment.screen_height)
        findings.append(Finding(
            requirement="resolution",
            needed=f"{width}x{height}",
            available=(f"{environment.screen_width}x"
                       f"{environment.screen_height}"),
            satisfied=fits, filterable=True))

    if requirements.color_depth:
        deep_enough = requirements.color_depth <= environment.color_depth
        findings.append(Finding(
            requirement="color-depth",
            needed=f"{requirements.color_depth}-bit",
            available=f"{environment.color_depth}-bit",
            satisfied=deep_enough,
            # Reduction needs at least a 1-bit target to map onto.
            filterable=environment.color_depth >= 1))

    if requirements.frame_rate:
        fast_enough = (requirements.frame_rate
                       <= environment.max_frame_rate)
        findings.append(Finding(
            requirement="frame-rate",
            needed=f"{requirements.frame_rate:g}fps",
            available=f"{environment.max_frame_rate:g}fps",
            satisfied=fast_enough,
            # Sub-sampling needs a positive device rate to target.
            filterable=environment.max_frame_rate > 0))

    if requirements.sample_rate:
        enough = requirements.sample_rate <= environment.max_sample_rate
        findings.append(Finding(
            requirement="sample-rate",
            needed=f"{requirements.sample_rate:g}Hz",
            available=f"{environment.max_sample_rate:g}Hz",
            satisfied=enough,
            filterable=(environment.has_audio
                        and environment.max_sample_rate > 0)))

    if requirements.audio_channels > 1:
        enough_lanes = (requirements.audio_channels
                        <= environment.audio_channels)
        findings.append(Finding(
            requirement="audio-channels",
            needed=f"{requirements.audio_channels}ch",
            available=f"{environment.audio_channels}ch",
            satisfied=enough_lanes,
            # Channel merging needs at least one output lane.
            filterable=environment.has_audio))

    if requirements.bandwidth_bps:
        enough = requirements.bandwidth_bps <= environment.bandwidth_bps
        plan = (None if enough
                else requirements.plan_for(environment))
        findings.append(Finding(
            requirement="bandwidth",
            needed=f"{requirements.bandwidth_bps}bps",
            available=f"{environment.bandwidth_bps}bps",
            satisfied=enough,
            # Honest: filterable only when the filter's own projection
            # fits the budget after (device + pressure) adaptations.
            filterable=enough or plan.achievable))

    tightest = requirements.tightest_must_epsilon_ms
    if tightest is not None:
        worst_latency = requirements.worst_latency_ms(environment)
        meets = worst_latency <= tightest
        findings.append(Finding(
            requirement="must-sync-tightness",
            needed=f"start latency <= {tightest:g}ms",
            available=f"worst latency {worst_latency:g}ms",
            satisfied=meets, filterable=False))

    if all(finding.satisfied for finding in findings):
        verdict = PLAYABLE
    elif all(finding.satisfied or finding.filterable
             for finding in findings):
        verdict = FILTERABLE
    else:
        verdict = UNPLAYABLE
    return NegotiationResult(environment=environment.name, verdict=verdict,
                             findings=findings)
