"""Document/environment capability negotiation (paper section 1).

"What CMIF can provide ... is a structured basis upon which a given
system can determine whether it can support the requested document or
not."  :func:`negotiate` performs that determination from descriptors
alone: it derives the document's requirements (media used, resolutions,
rates, bandwidth, hard-synchronization tightness) and checks them
against a :class:`~repro.transport.environments.SystemEnvironment`,
returning a structured verdict with per-requirement findings.

Three verdicts are possible, mirroring the pipeline's options:

* ``playable`` — every requirement is met natively;
* ``playable-with-filtering`` — unmet requirements can all be resolved
  by the constraint-filter stage (colour reduction, scaling,
  sub-sampling, channel merging);
* ``unplayable`` — some requirement has no filter (a required medium is
  entirely unsupported, or a must arc is tighter than the device
  latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channels import Medium
from repro.core.document import CmifDocument
from repro.core.errors import SyncArcError
from repro.core.syncarc import Strictness
from repro.core.tree import iter_preorder
from repro.transport.environments import SystemEnvironment

PLAYABLE = "playable"
FILTERABLE = "playable-with-filtering"
UNPLAYABLE = "unplayable"


@dataclass(frozen=True)
class Finding:
    """One requirement check: what the document needs vs what exists."""

    requirement: str
    needed: str
    available: str
    satisfied: bool
    filterable: bool = False

    def __str__(self) -> str:
        state = ("ok" if self.satisfied
                 else "filterable" if self.filterable else "unmet")
        return (f"{self.requirement}: needs {self.needed}, "
                f"has {self.available} [{state}]")


@dataclass
class NegotiationResult:
    """The structured verdict of a negotiation."""

    environment: str
    verdict: str
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True unless the document is unplayable."""
        return self.verdict != UNPLAYABLE

    def summary(self) -> str:
        lines = [f"negotiation against {self.environment}: {self.verdict}"]
        lines.extend(f"  - {finding}" for finding in self.findings)
        return "\n".join(lines)


def document_requirements(document: CmifDocument) -> dict[str, object]:
    """Derive a document's requirements from descriptors only.

    Returns media set, maximum resolution, colour depth, frame and
    sample rates, summed worst-case bandwidth, and the tightest must-arc
    window per medium.
    """
    media: set[Medium] = set()
    max_width = 0
    max_height = 0
    color_depth = 0
    frame_rate = 0.0
    sample_rate = 0.0
    bandwidth = 0
    compiled = document.compile()
    for event in compiled.events:
        media.add(event.medium)
        descriptor = event.descriptor
        if descriptor is None:
            continue
        resolution = descriptor.get("resolution")
        if resolution:
            width, height = resolution
            max_width = max(max_width, int(width))
            max_height = max(max_height, int(height))
        color_depth = max(color_depth, int(descriptor.get("color-depth", 0)))
        frame_rate = max(frame_rate, float(descriptor.get("frame-rate", 0.0)))
        sample_rate = max(sample_rate,
                          float(descriptor.get("sample-rate", 0.0)))
        resources = descriptor.get("resources", {})
        bandwidth += int(resources.get("bandwidth-bps", 0))
    return {
        "media": media,
        "max_resolution": (max_width, max_height),
        "color_depth": color_depth,
        "frame_rate": frame_rate,
        "sample_rate": sample_rate,
        "bandwidth_bps": bandwidth,
        "tightest_must_epsilon_ms": _tightest_must_window(document),
    }


def _tightest_must_window(document: CmifDocument) -> float | None:
    """The smallest finite max-delay among must arcs, if any."""
    tightest: float | None = None
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            if arc.strictness is not Strictness.MUST:
                continue
            try:
                _delta, epsilon = arc.window_ms(document.timebase)
            except SyncArcError:
                continue
            if epsilon is None:
                continue
            if tightest is None or epsilon < tightest:
                tightest = epsilon
    return tightest


def negotiate(document: CmifDocument,
              environment: SystemEnvironment) -> NegotiationResult:
    """Check ``document`` against ``environment``; never raises."""
    requirements = document_requirements(document)
    findings: list[Finding] = []

    for medium in sorted(requirements["media"], key=lambda m: m.value):
        supported = environment.supports(medium)
        findings.append(Finding(
            requirement=f"medium:{medium.value}",
            needed="supported",
            available="supported" if supported else "unsupported",
            satisfied=supported,
            filterable=False,
        ))

    width, height = requirements["max_resolution"]
    if width and height:
        fits = (width <= environment.screen_width
                and height <= environment.screen_height)
        findings.append(Finding(
            requirement="resolution",
            needed=f"{width}x{height}",
            available=(f"{environment.screen_width}x"
                       f"{environment.screen_height}"),
            satisfied=fits, filterable=True))

    if requirements["color_depth"]:
        deep_enough = requirements["color_depth"] <= environment.color_depth
        findings.append(Finding(
            requirement="color-depth",
            needed=f"{requirements['color_depth']}-bit",
            available=f"{environment.color_depth}-bit",
            satisfied=deep_enough, filterable=True))

    if requirements["frame_rate"]:
        fast_enough = (requirements["frame_rate"]
                       <= environment.max_frame_rate)
        findings.append(Finding(
            requirement="frame-rate",
            needed=f"{requirements['frame_rate']:g}fps",
            available=f"{environment.max_frame_rate:g}fps",
            satisfied=fast_enough, filterable=True))

    if requirements["sample_rate"]:
        enough = requirements["sample_rate"] <= environment.max_sample_rate
        findings.append(Finding(
            requirement="sample-rate",
            needed=f"{requirements['sample_rate']:g}Hz",
            available=f"{environment.max_sample_rate:g}Hz",
            satisfied=enough,
            filterable=environment.has_audio))

    if requirements["bandwidth_bps"]:
        enough = requirements["bandwidth_bps"] <= environment.bandwidth_bps
        findings.append(Finding(
            requirement="bandwidth",
            needed=f"{requirements['bandwidth_bps']}bps",
            available=f"{environment.bandwidth_bps}bps",
            satisfied=enough, filterable=True))

    tightest = requirements["tightest_must_epsilon_ms"]
    if tightest is not None:
        worst_latency = max(
            (environment.latency_for(m) for m in requirements["media"]),
            default=0.0)
        meets = worst_latency <= tightest
        findings.append(Finding(
            requirement="must-sync-tightness",
            needed=f"start latency <= {tightest:g}ms",
            available=f"worst latency {worst_latency:g}ms",
            satisfied=meets, filterable=False))

    if all(finding.satisfied for finding in findings):
        verdict = PLAYABLE
    elif all(finding.satisfied or finding.filterable
             for finding in findings):
        verdict = FILTERABLE
    else:
        verdict = UNPLAYABLE
    return NegotiationResult(environment=environment.name, verdict=verdict,
                             findings=findings)
