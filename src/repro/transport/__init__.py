"""Transport: environments, negotiation and document packaging.

Implements the paper's transportability story: capability descriptions
of target systems, the can-this-system-play-this-document determination,
and the two document transport modes (structure-only, self-contained).
"""

from repro.transport.environments import (LatencyMap, PERSONAL_SYSTEM,
                                          PROFILES, SILENT_TERMINAL,
                                          SystemEnvironment, WORKSTATION)
from repro.transport.negotiate import (FILTERABLE, Finding,
                                       NegotiationResult, PLAYABLE,
                                       UNPLAYABLE, document_requirements,
                                       negotiate)
from repro.transport.package import (PACKAGE_VERSION, UnpackResult,
                                     externals_to_immediates, pack, unpack)
from repro.transport.requirements import (DescriptorDemand,
                                          DocumentRequirements,
                                          EnvironmentPlan,
                                          PlannedAdaptation,
                                          RequirementsCache,
                                          requirements_for)

__all__ = [
    "DescriptorDemand", "DocumentRequirements", "EnvironmentPlan",
    "FILTERABLE", "Finding", "LatencyMap", "NegotiationResult",
    "PACKAGE_VERSION", "PERSONAL_SYSTEM", "PLAYABLE", "PROFILES",
    "PlannedAdaptation", "RequirementsCache", "SILENT_TERMINAL",
    "SystemEnvironment", "UNPLAYABLE", "UnpackResult", "WORKSTATION",
    "document_requirements", "externals_to_immediates", "negotiate",
    "pack", "requirements_for", "unpack",
]
