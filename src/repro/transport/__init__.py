"""Transport: environments, negotiation and document packaging.

Implements the paper's transportability story: capability descriptions
of target systems, the can-this-system-play-this-document determination,
and the two document transport modes (structure-only, self-contained).
"""

from repro.transport.environments import (PERSONAL_SYSTEM, PROFILES,
                                          SILENT_TERMINAL, SystemEnvironment,
                                          WORKSTATION)
from repro.transport.negotiate import (FILTERABLE, Finding,
                                       NegotiationResult, PLAYABLE,
                                       UNPLAYABLE, document_requirements,
                                       negotiate)
from repro.transport.package import (PACKAGE_VERSION, UnpackResult,
                                     externals_to_immediates, pack, unpack)

__all__ = [
    "FILTERABLE", "Finding", "NegotiationResult", "PACKAGE_VERSION",
    "PERSONAL_SYSTEM", "PLAYABLE", "PROFILES", "SILENT_TERMINAL",
    "SystemEnvironment", "UNPLAYABLE", "UnpackResult", "WORKSTATION",
    "document_requirements", "externals_to_immediates", "negotiate",
    "pack", "unpack",
]
