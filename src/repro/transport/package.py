"""Transportable document packaging (paper sections 5.1 and 6).

Two transport modes, straight from the paper:

* **Structure-only** — "The tree is a human-readable document that can be
  passed from one location to another with or without the underlying
  data."  :func:`pack` with ``embed_data=False`` ships the document text
  and descriptor attributes only; the receiver resolves blocks through
  its own (distributed) store.
* **Self-contained** — immediate nodes are "useful ... for transporting
  (large amounts of) data across environments that have no common
  storage server."  ``embed_data=True`` additionally carries payloads,
  hex-encoded and checksummed; :func:`externals_to_immediates` goes
  further and rewrites external nodes into immediate nodes for text
  media so even the document itself needs no store.

The container is a single JSON object (versioned, checksummed) — the
1991 equivalent would have been a tar of the text form; JSON keeps the
package single-file and testable.

Version history: v1 hex-encoded payload blocks; v2 (current) encodes
them base64, shrinking self-contained packages by roughly a quarter.
:func:`unpack` accepts both versions; :func:`pack` can still emit v1
for receivers that predate the bump.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass, field

from repro.core.channels import Medium
from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.document import CmifDocument
from repro.core.errors import TransportError
from repro.core.nodes import ExtNode, ImmNode, NodeKind
from repro.core.paths import node_path
from repro.core.tree import iter_preorder
from repro.faults import (FaultPlan, RetryPolicy, RobustnessStats,
                          corrupt_block, resolve_faults)
from repro.format.json_io import value_from_obj, value_to_obj
from repro.kernel._np import require_numpy
from repro.format.parser import parse_document
from repro.format.writer import write_document
from repro.store.datastore import DataStore

PACKAGE_VERSION = 2

#: Versions :func:`unpack` still opens (v1 shipped hex payloads).
SUPPORTED_PACKAGE_VERSIONS = (1, 2)


@dataclass
class UnpackResult:
    """A received package: the document plus a freshly-populated store."""

    document: CmifDocument
    store: DataStore
    embedded_blocks: int
    verified_checksums: int
    #: Fault/recovery ledger of this unpack (corrupt deliveries caught
    #: by checksum, re-request retries).  Empty when no fault plan ran.
    robustness: RobustnessStats = field(default_factory=RobustnessStats)


def pack(document: CmifDocument, store: DataStore | None = None, *,
         embed_data: bool = False, strict: bool = True,
         package_version: int = PACKAGE_VERSION) -> str:
    """Serialize a document (and optionally its data) into a package.

    Descriptors referenced by the document's ``file`` attributes are
    always included (they are the "relatively small clusters of data" the
    paper wants to travel); payload blocks are included only with
    ``embed_data`` and only when the store holds them.  With ``strict``
    (the default) an unresolvable ``file`` reference fails the packing;
    ``strict=False`` ships the structure anyway — the paper allows a
    tree to travel "with or without the underlying data".
    ``package_version=1`` emits the legacy hex payload encoding for old
    receivers.
    """
    if package_version not in SUPPORTED_PACKAGE_VERSIONS:
        raise TransportError(
            f"cannot emit package version {package_version!r}; supported "
            f"versions are {SUPPORTED_PACKAGE_VERSIONS}")
    text = write_document(document)
    descriptors: dict[str, dict] = {}
    blocks: dict[str, dict] = {}
    for file_id, descriptor in _referenced_descriptors(document, store,
                                                       strict):
        descriptors[file_id] = _descriptor_to_obj(descriptor)
        if embed_data and store is not None \
                and descriptor.block_id is not None \
                and store.has_block(descriptor.block_id):
            block = store.block_for(descriptor.descriptor_id)
            blocks[block.block_id] = _block_to_obj(block,
                                                   package_version)
    payload = {
        "cmif-package": {
            "version": package_version,
            "document": text,
            "descriptors": descriptors,
            "blocks": blocks,
        }
    }
    return json.dumps(payload, indent=1)


def _referenced_descriptors(document: CmifDocument,
                            store: DataStore | None,
                            strict: bool = True):
    """Yield (file_id, descriptor) for every resolvable file reference."""
    seen: set[str] = set()
    styles = document.styles_or_none()
    for node in iter_preorder(document.root):
        if node.kind is not NodeKind.EXT:
            continue
        file_id = node.effective("file", styles=styles)
        if file_id is None or file_id in seen:
            continue
        seen.add(file_id)
        descriptor = document.resolve_descriptor(file_id)
        if descriptor is None and store is not None \
                and file_id in store:
            descriptor = store.descriptor(file_id)
        if descriptor is None:
            if strict:
                raise TransportError(
                    f"cannot package {node_path(node)}: file {file_id!r} "
                    f"has no descriptor in the document or the store")
            continue
        yield file_id, descriptor


def _descriptor_to_obj(descriptor: DataDescriptor) -> dict:
    return {
        "descriptor_id": descriptor.descriptor_id,
        "medium": descriptor.medium.value,
        "block_id": descriptor.block_id,
        "attributes": {name: value_to_obj(value)
                       for name, value in descriptor.attributes.items()},
    }


def _descriptor_from_obj(obj: dict) -> DataDescriptor:
    return DataDescriptor(
        descriptor_id=obj["descriptor_id"],
        medium=Medium.from_name(obj["medium"]),
        block_id=obj.get("block_id"),
        attributes={name: value_from_obj(value)
                    for name, value in (obj.get("attributes") or {}).items()},
    )


def _encode_payload(raw: bytes, package_version: int) -> str:
    """Raw payload bytes -> the version's transfer text (hex or b64)."""
    if package_version == 1:
        return raw.hex()
    return base64.b64encode(raw).decode("ascii")


def _decode_payload(text: str, package_version: int) -> bytes:
    """The version's transfer text -> raw payload bytes."""
    try:
        if package_version == 1:
            return bytes.fromhex(text)
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise TransportError(
            f"corrupt block payload in a v{package_version} package: "
            f"{exc}") from None


def _block_to_obj(block: DataBlock,
                  package_version: int = PACKAGE_VERSION) -> dict:
    data = block.materialize()
    if isinstance(data, str):
        raw = data.encode("utf-8")
        encoding = "utf-8"
    elif isinstance(data, (bytes, bytearray)):
        raw = bytes(data)
        encoding = "bytes"
    else:
        # Array payloads (audio/video/image) travel as raw bytes plus a
        # shape note; numpy is reconstructed on unpack.
        np = require_numpy("array payload packaging")
        array = np.asarray(data)
        raw = array.tobytes()
        encoding = f"ndarray:{array.dtype}:" + ",".join(
            str(dim) for dim in array.shape)
    return {
        "block_id": block.block_id,
        "medium": block.medium.value,
        "encoding": encoding,
        "data": _encode_payload(raw, package_version),
        "checksum": block.checksum(),
    }


def _block_from_obj(obj: dict,
                    package_version: int = PACKAGE_VERSION) -> DataBlock:
    encoding = obj["encoding"]
    raw = _decode_payload(obj["data"], package_version)
    if encoding == "utf-8":
        payload: object = raw.decode("utf-8")
    elif encoding == "bytes":
        payload = raw
    elif encoding.startswith("ndarray:"):
        np = require_numpy("array payload unpacking")
        _, dtype, shape_text = encoding.split(":", 2)
        shape = tuple(int(dim) for dim in shape_text.split(","))
        payload = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    else:
        raise TransportError(f"unknown block encoding {encoding!r}")
    return DataBlock(block_id=obj["block_id"],
                     medium=Medium.from_name(obj["medium"]),
                     payload=payload)


def unpack(package_text: str, *, verify: bool = True,
           faults: "FaultPlan | str | None" = None,
           retry: RetryPolicy | None = None) -> UnpackResult:
    """Open a package: parse the document, rebuild a store, verify sums.

    ``faults`` (a :class:`~repro.faults.FaultPlan`, a spec string, or
    the ``REPRO_FAULTS`` environment default) simulates deliveries that
    corrupt embedded block payloads in flight; checksum verification is
    what catches them, and each caught corruption re-requests the
    package (rebuilding the blocks from the received text) up to the
    ``retry`` policy's attempt budget.  A mismatch with *no* injected
    corruption is the package itself being damaged — deterministic, so
    it fails immediately, exactly as without a plan.
    """
    faults = resolve_faults(faults)
    if retry is None:
        retry = RetryPolicy()
    robustness = RobustnessStats()
    try:
        payload = json.loads(package_text)
    except json.JSONDecodeError as exc:
        raise TransportError(f"corrupt package: {exc}") from None
    body = payload.get("cmif-package")
    if not isinstance(body, dict):
        raise TransportError("not a CMIF package (missing 'cmif-package')")
    version = body.get("version")
    if version not in SUPPORTED_PACKAGE_VERSIONS:
        raise TransportError(
            f"unsupported package version {version!r}")
    document = parse_document(body["document"])
    store = DataStore(name="unpacked")
    block_objs = body.get("blocks") or {}
    attempt = 0
    while True:
        blocks = {block_id: _block_from_obj(obj, version)
                  for block_id, obj in block_objs.items()}
        injected = 0
        if faults is not None and faults.package_corrupt_rate > 0:
            for block_id in blocks:
                if faults.fires(faults.package_corrupt_rate,
                                "package-corrupt", block_id, attempt):
                    robustness.record_fault("package-corrupt")
                    blocks[block_id] = corrupt_block(blocks[block_id])
                    injected += 1
        verified = 0
        mismatched: str | None = None
        if verify:
            for block_id, obj in block_objs.items():
                actual = blocks[block_id].checksum()
                if actual != obj["checksum"]:
                    mismatched = block_id
                    break
                verified += 1
        if mismatched is None:
            # Undetected injected corruption (verify=False) reaches the
            # caller — the ledger says so rather than hiding it.
            robustness.unrecovered += injected
            break
        robustness.checksum_rejects += 1
        attempt += 1
        if injected == 0 or retry.gives_up(attempt, 0.0):
            robustness.unrecovered += injected
            raise TransportError(
                f"checksum mismatch for block {mismatched!r}: the "
                f"package was corrupted in transport")
        # A fresh delivery masks every corruption of this attempt.
        robustness.retries += 1
        robustness.recovered += injected
    for file_id, obj in (body.get("descriptors") or {}).items():
        descriptor = _descriptor_from_obj(obj)
        block = blocks.get(descriptor.block_id) \
            if descriptor.block_id else None
        store.register(descriptor, block)
        document.register_descriptor(file_id, descriptor)
    return UnpackResult(document=document, store=store,
                        embedded_blocks=len(blocks),
                        verified_checksums=verified,
                        robustness=robustness)


def externals_to_immediates(document: CmifDocument,
                            store: DataStore) -> int:
    """Rewrite text external nodes into immediate nodes, in place.

    This is the paper's no-common-storage-server transport: small text
    payloads move into the document itself.  Non-text media stay
    external (embedding pixels in a human-readable document defeats its
    purpose); they travel via ``pack(embed_data=True)`` instead.
    Returns the number of nodes rewritten.
    """
    rewritten = 0
    styles = document.styles_or_none()
    for node in list(iter_preorder(document.root)):
        if node.kind is not NodeKind.EXT:
            continue
        file_id = node.effective("file", styles=styles)
        if file_id is None:
            continue
        descriptor = document.resolve_descriptor(file_id)
        if descriptor is None and file_id in store:
            descriptor = store.descriptor(file_id)
        if descriptor is None or descriptor.medium is not Medium.TEXT:
            continue
        if descriptor.block_id is None \
                or not store.has_block(descriptor.block_id):
            continue
        block = store.block_for(descriptor.descriptor_id)
        parent = node.parent
        if parent is None:
            continue
        replacement = ImmNode(None, None, str(block.materialize()))
        for attribute in node.attributes:
            if attribute.name == "file":
                continue
            value = attribute.value
            replacement.attributes.set(
                attribute.name, list(value) if isinstance(value, list)
                else value)
        index = parent.index_of(node)
        parent.detach(node)
        parent.insert(index, replacement)
        rewritten += 1
    return rewritten
