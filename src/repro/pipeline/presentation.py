"""Pipeline stage 3: the presentation mapping tool (paper section 2).

"This tool allows portions of a document to be allocated to a virtual
presentation environment ... to allocate virtual presentation 'real
estate' (such as areas on a display or channels of a loudspeaker) to a
given multimedia document. ... this tool manipulates the definitions
provided in the CMIF document and creates a presentation map that can be
manipulated separately from the document itself."

The virtual environment is a normalized screen (the allocator works in a
1000x1000 virtual coordinate space, so the map is target-independent —
the constraint-filter stage later scales it to physical pixels) plus a
set of loudspeaker channels.  Visual channels receive :class:`Region`
rectangles; aural channels receive speaker indices.  Preference defaults
may come "provided with each atomic media block" — here, from channel
declaration extras (``region-hint``, ``prefer-width``) — "or they may
need to be added by this tool", which otherwise lays channels out in
columns by medium weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.channels import Channel, Medium
from repro.core.document import CmifDocument
from repro.core.errors import DeviceConstraintError
from repro.core.values import Rect

#: The virtual screen's coordinate space (target-independent units).
VIRTUAL_WIDTH = 1000
VIRTUAL_HEIGHT = 1000

#: Relative widths by medium when the tool must invent a layout; video
#: dominates the screen the way the news example's main stream does.
_MEDIUM_WEIGHT = {
    Medium.VIDEO: 3.0,
    Medium.IMAGE: 2.0,
    Medium.TEXT: 1.0,
    Medium.PROGRAM: 1.0,
}


@dataclass(frozen=True)
class Region:
    """One allocated area of the virtual screen."""

    channel: str
    rect: Rect
    z_order: int = 0

    def scaled_to(self, width: int, height: int) -> Rect:
        """The region mapped to a physical screen of the given size."""
        if width <= 0 or height <= 0:
            raise DeviceConstraintError(
                f"cannot map regions onto a {width}x{height} screen")
        return Rect(
            self.rect.x * width // VIRTUAL_WIDTH,
            self.rect.y * height // VIRTUAL_HEIGHT,
            max(1, self.rect.width * width // VIRTUAL_WIDTH),
            max(1, self.rect.height * height // VIRTUAL_HEIGHT),
        )


@dataclass(frozen=True)
class SpeakerAssignment:
    """One aural channel's loudspeaker allocation."""

    channel: str
    speaker: int


@dataclass
class PresentationMap:
    """The stage-3 output: virtual real estate per channel.

    Deliberately separate from the document (the paper: "a presentation
    map that can be manipulated separately from the document itself") —
    re-mapping a document to a different layout never touches the tree.
    """

    regions: dict[str, Region] = field(default_factory=dict)
    speakers: dict[str, SpeakerAssignment] = field(default_factory=dict)

    def region_for(self, channel: str) -> Region:
        """The region of a visual channel."""
        region = self.regions.get(channel)
        if region is None:
            raise DeviceConstraintError(
                f"channel {channel!r} has no allocated region")
        return region

    def speaker_for(self, channel: str) -> SpeakerAssignment:
        """The speaker of an aural channel."""
        assignment = self.speakers.get(channel)
        if assignment is None:
            raise DeviceConstraintError(
                f"channel {channel!r} has no allocated speaker")
        return assignment

    def overlap_pairs(self) -> list[tuple[str, str]]:
        """Pairs of visual channels whose regions overlap.

        Overlap is legal (the news label overlays the video) but the
        viewer and tests want to know about it; z-order decides what is
        on top.  A sweep over the rects sorted by left edge only
        compares regions whose x-extents intersect, so column layouts
        (which mostly don't overlap) cost near-linear instead of
        comparing every pair; results stay in sorted (first, second)
        name order.
        """
        spans = sorted(
            ((region.rect.x, region.rect.x + region.rect.width,
              name, region.rect) for name, region in self.regions.items()),
            key=lambda span: (span[0], span[2]))
        pairs: list[tuple[str, str]] = []
        active: list[tuple[float, str, "Rect"]] = []
        for x, _right, name, rect in spans:
            active = [entry for entry in active if entry[0] > x]
            for _other_right, other_name, other_rect in active:
                if rect.intersect(other_rect) is not None:
                    pairs.append(tuple(sorted((name, other_name))))
            active.append((x + rect.width, name, rect))
        pairs.sort()
        return pairs

    def describe(self) -> str:
        """Human-readable allocation summary (used by the fig-4 bench)."""
        lines = ["presentation map (virtual 1000x1000):"]
        for name in sorted(self.regions):
            region = self.regions[name]
            rect = region.rect
            lines.append(
                f"  {name:<10} region ({rect.x:4},{rect.y:4}) "
                f"{rect.width:4}x{rect.height:<4} z={region.z_order}")
        for name in sorted(self.speakers):
            lines.append(
                f"  {name:<10} speaker #{self.speakers[name].speaker}")
        return "\n".join(lines)


class PresentationMapper:
    """Allocates virtual real estate to a document's channels."""

    def __init__(self, *, speaker_count: int = 2) -> None:
        if speaker_count < 0:
            raise DeviceConstraintError("speaker count cannot be negative")
        self.speaker_count = speaker_count

    def map_document(self, document: CmifDocument) -> PresentationMap:
        """Produce the presentation map for every declared channel."""
        visual = [c for c in document.channels if c.is_visual]
        aural = [c for c in document.channels if c.is_aural]
        presentation = PresentationMap()
        self._allocate_visual(visual, presentation)
        self._allocate_aural(aural, presentation)
        return presentation

    # -- visual allocation --------------------------------------------------

    def _allocate_visual(self, channels: list[Channel],
                         presentation: PresentationMap) -> None:
        hinted = [c for c in channels if "region-hint" in c.extra]
        automatic = [c for c in channels if "region-hint" not in c.extra]
        for z, channel in enumerate(hinted):
            rect = _rect_from_hint(channel)
            presentation.regions[channel.name] = Region(
                channel=channel.name, rect=rect, z_order=z + 100)
        if automatic:
            self._column_layout(automatic, presentation)

    def _column_layout(self, channels: list[Channel],
                       presentation: PresentationMap) -> None:
        """Weighted column layout for channels without preferences.

        Channels split the virtual screen into vertical columns whose
        widths follow the medium weights; text channels are additionally
        stacked when there are several (captions below labels, like the
        news screen).
        """
        weights = [
            float(c.extra.get("prefer-width",
                              _MEDIUM_WEIGHT.get(c.medium, 1.0)))
            for c in channels]
        total = sum(weights) or 1.0
        x = 0
        for z, (channel, weight) in enumerate(zip(channels, weights)):
            width = max(1, int(VIRTUAL_WIDTH * weight / total))
            if channel is channels[-1]:
                width = VIRTUAL_WIDTH - x  # absorb rounding in the last column
            rect = Rect(x, 0, width, VIRTUAL_HEIGHT)
            presentation.regions[channel.name] = Region(
                channel=channel.name, rect=rect, z_order=z)
            x += width

    # -- aural allocation ----------------------------------------------------

    def _allocate_aural(self, channels: list[Channel],
                        presentation: PresentationMap) -> None:
        if channels and self.speaker_count == 0:
            raise DeviceConstraintError(
                f"document needs audio channels "
                f"({[c.name for c in channels]}) but the virtual "
                f"environment has no speakers")
        for index, channel in enumerate(channels):
            speaker = int(channel.extra.get(
                "speaker-hint", index % max(1, self.speaker_count)))
            if not 0 <= speaker < max(1, self.speaker_count):
                raise DeviceConstraintError(
                    f"channel {channel.name!r} requests speaker {speaker} "
                    f"but only {self.speaker_count} exist")
            presentation.speakers[channel.name] = SpeakerAssignment(
                channel=channel.name, speaker=speaker)


def _rect_from_hint(channel: Channel) -> Rect:
    """Decode a channel's ``region-hint`` extra into a virtual rect."""
    hint = channel.extra["region-hint"]
    if isinstance(hint, Rect):
        return hint
    if isinstance(hint, dict):
        return Rect(int(hint.get("x", 0)), int(hint.get("y", 0)),
                    int(hint.get("width", VIRTUAL_WIDTH)),
                    int(hint.get("height", VIRTUAL_HEIGHT)))
    if isinstance(hint, (list, tuple)) and len(hint) == 4:
        x, y, w, h = hint
        return Rect(int(x), int(y), int(w), int(h))
    raise DeviceConstraintError(
        f"channel {channel.name!r} has a malformed region-hint {hint!r}")
