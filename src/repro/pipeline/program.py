"""Compiled playback programs: the batch replay engine (serving path).

One authored document is replayed thousands of times under different
seeds, rates, seeks and target environments — the "locally served,
centrally authored" consumption pattern.  The interpretive player pays
document-shaped costs on every run: schedule copies for rate/freeze
transforms, per-event dict lookups, a tree walk plus per-arc path
resolution for the audit, and an object allocation per played event.
All of that is invariant across runs.

This module lowers a solved :class:`~repro.timing.schedule.Schedule`
into a flat :class:`PlaybackProgram` once:

* parallel arrays of event begin/end times, channel and medium indices;
* a fully resolved arc table (endpoint event-index lists, anchor flags,
  offset/delta/epsilon already converted to milliseconds, owner paths
  and figure-9 descriptions preformatted);
* a second arc table in preorder for the class-3 seek analysis;
* per-environment latency tables indexed by medium position.

A :class:`BatchPlayer` then replays the program with a per-run inner
loop that is pure array arithmetic: rate, freeze-frame and seek are
arithmetic transforms of the time arrays (cached per configuration),
and every run produces a :class:`CompactReport` whose
``PlayedEvent``/``ArcAudit``/``ConflictReport`` objects are only built
when accessed.  ``Player.play`` runs on top of this engine and stays
bit-identical to the interpretive path (``Player.play_reference``),
which the equivalence tests and the playback bench both gate.
"""

from __future__ import annotations

import collections
import random
from dataclasses import dataclass, field

from repro.core.channels import Medium
from repro.core.errors import PathError, PlaybackError
from repro.kernel import resolve_kernel
from repro.core.paths import path_map, resolve_path
from repro.core.syncarc import Anchor, ConditionalArc, Strictness
from repro.core.tree import iter_postorder, iter_preorder
from repro.timing.conflicts import (ConflictReport,
                                    navigation_conflict_report)
from repro.timing.intervals import Window
from repro.timing.schedule import Schedule, ScheduleCache, schedule_for
from repro.transport.environments import SystemEnvironment, WORKSTATION


@dataclass(frozen=True)
class AuditArc:
    """One explicit arc, resolved and unit-converted at compile time.

    ``source_events``/``dest_events`` are indices into the program's
    event arrays — the leaf events under each resolved endpoint.  A
    node's realized interval is the (min begin, max end) envelope of its
    played leaves, which is exactly what the interpretive player's
    postorder composition computes.
    """

    owner_path: str
    description: str
    strictness: Strictness
    src_begin: bool
    dst_begin: bool
    offset_ms: float
    delta_ms: float
    epsilon_ms: float | None
    source_events: tuple[int, ...]
    dest_events: tuple[int, ...]


@dataclass(frozen=True)
class NavArc:
    """One arc as the seek analysis sees it (preorder, conditionals too).

    ``error`` carries a deferred :class:`PathError` for conditional arcs
    whose endpoints do not resolve: the interpretive path only resolves
    them when a seek actually happens, so the compiled path must not
    raise any earlier.
    """

    owner_path: str
    description: str
    strictness: Strictness
    source_events: tuple[int, ...]
    dest_events: tuple[int, ...]
    error: PathError | None = None


@dataclass(frozen=True)
class RunPlan:
    """One configuration's precomputed run state (see ``plan()``).

    Shared by every replay of a (transform, seek, environment)
    configuration; the arrays are read-only from the run loop's side.
    """

    tb: list[float]
    te: list[float]
    active: list[int]
    played: list[bool]
    ready_base: list[float]
    duration: list[float]


class PlaybackProgram:
    """A schedule lowered to flat arrays, replayable without the tree.

    ``adaptation`` is None for the shared base program; an environment-
    specialized program (see :meth:`specialized`) carries its compiled
    :class:`~repro.pipeline.adaptation.AdaptationProgram` while sharing
    every array with the base — per-descriptor filtering never changes
    event timing (durations are authored, not derived from rates), so
    specialization is metadata, not a re-lowering.
    """

    __slots__ = ("schedule", "revision", "n_events", "begin_ms", "end_ms",
                 "node_paths", "channels", "channel_index", "media",
                 "medium_index", "audit_arcs", "nav_arcs", "_audit_rows",
                 "_kernel_views", "patch_epoch", "adaptation")

    def __init__(self, schedule: Schedule, revision: int,
                 begin_ms: list[float], end_ms: list[float],
                 node_paths: tuple[str, ...], channels: tuple[str, ...],
                 channel_index: list[int], media: tuple[Medium, ...],
                 medium_index: list[int],
                 audit_arcs: "tuple[AuditArc, ...] | list[AuditArc]",
                 nav_arcs: "tuple[NavArc, ...] | list[NavArc]",
                 adaptation=None) -> None:
        self.schedule = schedule
        self.revision = revision
        self.n_events = len(begin_ms)
        self.begin_ms = begin_ms
        self.end_ms = end_ms
        self.node_paths = node_paths
        self.channels = channels
        self.channel_index = channel_index
        self.media = media
        self.medium_index = medium_index
        # Arc tables are lists so the live-edit patcher can splice rows
        # in place; every environment-specialized clone shares the same
        # list objects (see :meth:`specialized`), so one splice updates
        # all of them.
        self.audit_arcs = list(audit_arcs)
        self.nav_arcs = list(nav_arcs)
        self.adaptation = adaptation
        #: Per-kernel compiled array views (lazily built, shared with
        #: every environment-specialized clone).
        self._kernel_views: dict = {}
        #: One-element shared generation counter: the live-edit patcher
        #: bumps it when it mutates the compiled arrays in place, and
        #: every :class:`BatchPlayer` over this program (or any clone)
        #: flushes its per-configuration caches on the next use.
        self.patch_epoch: list[int] = [0]
        # The audit loop's hot view of the arc table: plain tuples
        # unpack far faster than seven dataclass attribute reads.
        self._audit_rows = [audit_row(arc) for arc in self.audit_arcs]

    def specialized(self, adaptation) -> "PlaybackProgram":
        """An environment-specialized view sharing all compiled arrays."""
        clone = PlaybackProgram(
            self.schedule, self.revision, self.begin_ms, self.end_ms,
            self.node_paths, self.channels, self.channel_index,
            self.media, self.medium_index, (), (),
            adaptation=adaptation)
        # Share the mutable tables by identity (the constructor copies
        # its arguments): an in-place patch of the base must be visible
        # through every clone.
        clone.audit_arcs = self.audit_arcs
        clone.nav_arcs = self.nav_arcs
        clone._audit_rows = self._audit_rows
        clone._kernel_views = self._kernel_views
        clone.patch_epoch = self.patch_epoch
        return clone

    # -- per-run execution (pure array arithmetic) ------------------------

    def plan(self, tb: list[float], te: list[float], seek_to_ms: float,
             latencies: list[float], prefetch_lead_ms: float
             ) -> "RunPlan":
        """Everything run-invariant for one configuration, precomputed.

        The seek skip test, the prefetch dispatch clamp, the device
        latency add and the event duration are all functions of the
        (transform, seek, environment) configuration only; batching
        thousands of replays under one configuration should not repeat
        them.  The arithmetic mirrors the interpretive loop exactly:
        ``ready_base[i]`` is its ``dispatch + latency`` partial sum, to
        which each run adds only the jitter draw.
        """
        n = self.n_events
        active: list[int] = []
        played = [False] * n
        ready_base = [0.0] * n
        duration = [0.0] * n
        seeking = seek_to_ms > 0
        for i in range(n):
            end = te[i]
            if end <= seek_to_ms:
                continue
            begin = tb[i]
            dispatch = begin - prefetch_lead_ms
            if seeking and dispatch < seek_to_ms:
                dispatch = seek_to_ms
            ready_base[i] = dispatch + latencies[i]
            duration[i] = end - begin
            played[i] = True
            active.append(i)
        return RunPlan(tb=tb, te=te, active=active, played=played,
                       ready_base=ready_base, duration=duration)

    def run(self, plan: "RunPlan", jitter_ms: float,
            rng: random.Random):
        """One simulated run: the per-replay arithmetic and nothing else.

        Returns ``(actual_begin, actual_end)`` parallel arrays.  The
        jitter draw order matches the interpretive player exactly: one
        draw per non-skipped event, in canonical order, only when the
        environment has jitter at all — and ``rng.uniform(0.0, j)`` is
        exactly ``0.0 + (j - 0.0) * rng.random()``, so calling the
        C-level ``random()`` directly keeps the sequence bit-identical
        while skipping the Python wrapper per event.
        """
        n = self.n_events
        actual_begin = [0.0] * n
        actual_end = [0.0] * n
        channel_free = [0.0] * len(self.channels)
        channel_index = self.channel_index
        tb = plan.tb
        ready_base = plan.ready_base
        duration = plan.duration
        if jitter_ms > 0:
            random_f = rng.random
            for i in plan.active:
                ready = ready_base[i] + jitter_ms * random_f()
                start = tb[i]
                if ready > start:
                    start = ready
                lane = channel_index[i]
                free = channel_free[lane]
                if free > start:
                    start = free
                stop = start + duration[i]
                channel_free[lane] = stop
                actual_begin[i] = start
                actual_end[i] = stop
        else:
            for i in plan.active:
                ready = ready_base[i] + 0.0
                start = tb[i]
                if ready > start:
                    start = ready
                lane = channel_index[i]
                free = channel_free[lane]
                if free > start:
                    start = free
                stop = start + duration[i]
                channel_free[lane] = stop
                actual_begin[i] = start
                actual_end[i] = stop
        return actual_begin, actual_end

    def audit(self, actual_begin: list[float], actual_end: list[float],
              played: list[bool]):
        """Evaluate every audit arc against realized times.

        Returns one entry per arc: ``None`` when an endpoint has no
        played leaves (the interpretive path emits no audit then), else
        ``(actual_ms, violation_ms, low_ms, high_ms)``.
        """
        results = []
        append = results.append
        for (source_events, src_begin, dest_events, dst_begin,
             offset_ms, delta_ms, epsilon_ms) in self._audit_rows:
            # Leaf-to-leaf arcs (one event per endpoint) dominate; skip
            # the envelope loop for them.
            if len(source_events) == 1:
                j = source_events[0]
                tref = ((actual_begin[j] if src_begin else actual_end[j])
                        if played[j] else None)
            else:
                tref = _endpoint_time(source_events, src_begin,
                                      actual_begin, actual_end, played)
            if tref is None:
                append(None)
                continue
            if len(dest_events) == 1:
                j = dest_events[0]
                actual = ((actual_begin[j] if dst_begin
                           else actual_end[j]) if played[j] else None)
            else:
                actual = _endpoint_time(dest_events, dst_begin,
                                        actual_begin, actual_end, played)
            if actual is None:
                append(None)
                continue
            base = tref + offset_ms
            low = base + delta_ms
            high = None if epsilon_ms is None else base + epsilon_ms
            if actual < low:
                violation = actual - low
            elif high is not None and actual > high:
                violation = actual - high
            else:
                violation = 0.0
            append((actual, violation, low, high))
        return results

    def navigation_conflicts(self, tb: list[float], te: list[float],
                             seek_to_ms: float) -> list[ConflictReport]:
        """The class-3 reports for a seek, from the precompiled table."""
        reports: list[ConflictReport] = []
        for arc in self.nav_arcs:
            if arc.error is not None:
                raise arc.error
            if not arc.source_events or not arc.dest_events:
                continue
            source_end = max(te[i] for i in arc.source_events)
            destination_begin = min(tb[i] for i in arc.dest_events)
            if source_end < seek_to_ms and destination_begin >= seek_to_ms:
                reports.append(navigation_conflict_report(
                    arc.owner_path, arc.description, arc.strictness,
                    seek_to_ms))
        return reports

    def event_latencies(self, environment: SystemEnvironment
                        ) -> list[float]:
        """Per-event start latency under ``environment``."""
        table = environment.latency_table(self.media)
        return [table[m] for m in self.medium_index]


def audit_row(arc: AuditArc) -> tuple:
    """The audit loop's hot-tuple form of one :class:`AuditArc` row."""
    return (arc.source_events, arc.src_begin, arc.dest_events,
            arc.dst_begin, arc.offset_ms, arc.delta_ms, arc.epsilon_ms)


def event_slot_map(schedule: Schedule) -> dict[int, int]:
    """``id(event) -> program array slot`` in canonical event order."""
    return {id(scheduled.event): index
            for index, scheduled in enumerate(schedule.ordered_events())}


def events_under(node, compiled, event_slot: dict[int, int]
                 ) -> tuple[int, ...]:
    """Array slots of the scheduled leaf events under ``node``."""
    indices = []
    for leaf in iter_preorder(node):
        if leaf.is_leaf:
            event = compiled.by_node.get(id(leaf))
            if event is not None:
                slot = event_slot.get(id(event))
                if slot is not None:
                    indices.append(slot)
    return tuple(indices)


def build_audit_arc(node, arc, paths: dict[int, str], timebase,
                    compiled, event_slot: dict[int, int]) -> AuditArc:
    """One arc's :class:`AuditArc` row, exactly as compilation emits it.

    Shared by :func:`compile_program` and the live-edit patcher
    (:mod:`repro.pipeline.patch`), so a patched-in row can never drift
    from what a from-scratch compile would produce.
    """
    source = resolve_path(node, arc.source)
    destination = resolve_path(node, arc.destination)
    delta_ms, epsilon_ms = arc.window_ms(timebase)
    return AuditArc(
        owner_path=paths[id(node)],
        description=arc.describe(),
        strictness=arc.strictness,
        src_begin=arc.src_anchor is Anchor.BEGIN,
        dst_begin=arc.dst_anchor is Anchor.BEGIN,
        offset_ms=timebase.to_ms(arc.offset),
        delta_ms=delta_ms,
        epsilon_ms=epsilon_ms,
        source_events=events_under(source, compiled, event_slot),
        dest_events=events_under(destination, compiled, event_slot))


def build_nav_arc(node, arc, paths: dict[int, str],
                  compiled, event_slot: dict[int, int]) -> NavArc:
    """One arc's :class:`NavArc` row, exactly as compilation emits it."""
    try:
        source = resolve_path(node, arc.source)
        destination = resolve_path(node, arc.destination)
    except PathError as exc:
        # Only conditional arcs can defer: explicit arcs with broken
        # endpoints already raised in the audit pass, like every
        # interpretive play() does.
        return NavArc(
            owner_path=paths[id(node)],
            description=arc.describe(),
            strictness=arc.strictness,
            source_events=(), dest_events=(), error=exc)
    return NavArc(
        owner_path=paths[id(node)],
        description=arc.describe(),
        strictness=arc.strictness,
        source_events=events_under(source, compiled, event_slot),
        dest_events=events_under(destination, compiled, event_slot))


def compile_program(schedule: Schedule,
                    cache: "ProgramCache | None" = None
                    ) -> PlaybackProgram:
    """Lower a schedule into a :class:`PlaybackProgram`.

    Everything invariant across runs is paid here once: the canonical
    event order, the node path map, arc endpoint resolution, unit
    conversion of arc windows, and the figure-9 descriptions the report
    objects carry.
    """
    if cache is not None:
        return cache.program_for(schedule)
    compiled = schedule.compiled
    document = compiled.document
    timebase = document.timebase
    paths = path_map(document.root)
    ordered = schedule.ordered_events()

    begin_ms = [event.begin_ms for event in ordered]
    end_ms = [event.end_ms for event in ordered]
    node_paths = tuple(event.event.node_path for event in ordered)
    channel_slots: dict[str, int] = {}
    channel_index: list[int] = []
    medium_slots: dict[Medium, int] = {}
    medium_index: list[int] = []
    for scheduled in ordered:
        name = scheduled.event.channel
        channel_index.append(
            channel_slots.setdefault(name, len(channel_slots)))
        medium = scheduled.event.medium
        medium_index.append(
            medium_slots.setdefault(medium, len(medium_slots)))

    event_slot = event_slot_map(schedule)

    audit_arcs: list[AuditArc] = []
    for node in iter_postorder(document.root):
        for arc in node.arcs:
            if isinstance(arc, ConditionalArc):
                continue
            audit_arcs.append(build_audit_arc(
                node, arc, paths, timebase, compiled, event_slot))

    nav_arcs: list[NavArc] = []
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            nav_arcs.append(build_nav_arc(
                node, arc, paths, compiled, event_slot))

    return PlaybackProgram(
        schedule=schedule,
        revision=document.revision,
        begin_ms=begin_ms, end_ms=end_ms, node_paths=node_paths,
        channels=tuple(channel_slots), channel_index=channel_index,
        media=tuple(medium_slots), medium_index=medium_index,
        audit_arcs=tuple(audit_arcs), nav_arcs=tuple(nav_arcs))


def _endpoint_time(events: tuple[int, ...], anchor_begin: bool,
                   actual_begin: list[float], actual_end: list[float],
                   played: list[bool]) -> float | None:
    """A node envelope's anchored time: min begin or max end of leaves."""
    value: float | None = None
    if anchor_begin:
        for index in events:
            if played[index]:
                candidate = actual_begin[index]
                if value is None or candidate < value:
                    value = candidate
    else:
        for index in events:
            if played[index]:
                candidate = actual_end[index]
                if value is None or candidate > value:
                    value = candidate
    return value


class ProgramCache:
    """Compiled programs keyed by (schedule identity, revision,
    environment fingerprint).

    The serving path replays one schedule across many runs, rates and
    environments; the base program only changes when the schedule does,
    and each environment-specialized program (base + compiled
    adaptation) is keyed by the environment's capability fingerprint —
    so capability-identical environments share one entry regardless of
    their names.  Like the schedule cache, entries pin their schedule
    so ``id()`` reuse is impossible, and a document edit (revision
    bump) moves the key.

    Superseded revisions are evicted eagerly: inserting an entry for a
    document drops every entry of the *same document* at a different
    revision (those keys embed the old ``id(schedule)`` and can never
    be probed again, so without this a long edit session leaks an
    entry per edit per level).  The live-edit patcher instead calls
    :meth:`take` *before* the revision moves, re-keying the still-valid
    compiled programs it patched in place.

    The key's third slot classifies the pyramid level an entry belongs
    to — ``None`` for the base playback program, an environment
    fingerprint for an adaptation composition, ``("derived", tag)``
    for schedule-derived artifacts such as navigation programs — which
    is what lets the patcher dirty (and recompile) levels selectively;
    :meth:`level_of` names the classification.
    """

    def __init__(self, capacity: int = 8) -> None:
        if capacity <= 0:
            raise PlaybackError(
                f"program cache capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: collections.OrderedDict[
            tuple, tuple[Schedule, PlaybackProgram]] = \
            collections.OrderedDict()
        #: id(document) -> set of live keys, so superseded-revision
        #: eviction and live-edit re-keying never scan the whole table.
        self._by_document: dict[int, set] = {}

    @staticmethod
    def _key(schedule: Schedule,
             environment: SystemEnvironment | None = None) -> tuple:
        return (id(schedule), schedule.compiled.document.revision,
                None if environment is None else environment.fingerprint())

    @staticmethod
    def level_of(slot) -> str:
        """The pyramid level a key's third slot classifies.

        ``"program"`` — the base playback program; ``"adaptation"`` —
        an environment-fingerprint composition; any derived tag (for
        example ``"navigation"``) names itself.
        """
        if slot is None:
            return "program"
        if isinstance(slot, tuple) and len(slot) == 2 \
                and slot[0] == "derived":
            return slot[1]
        return "adaptation"

    def _insert(self, schedule: Schedule, key: tuple, value) -> None:
        document = schedule.compiled.document
        doc_keys = self._by_document.setdefault(id(document), set())
        revision = key[1]
        stale = [old for old in doc_keys if old[1] != revision]
        for old in stale:
            doc_keys.discard(old)
            self._entries.pop(old, None)
        self._entries[key] = (schedule, value)
        self._entries.move_to_end(key)
        doc_keys.add(key)
        while len(self._entries) > self.capacity:
            evicted_key, (evicted_schedule, _) = \
                self._entries.popitem(last=False)
            evicted_doc = id(evicted_schedule.compiled.document)
            keys = self._by_document.get(evicted_doc)
            if keys is not None:
                keys.discard(evicted_key)
                if not keys:
                    del self._by_document[evicted_doc]

    def get(self, schedule: Schedule, *,
            environment: SystemEnvironment | None = None
            ) -> PlaybackProgram | None:
        key = self._key(schedule, environment)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[1]

    def put(self, schedule: Schedule, program: PlaybackProgram, *,
            environment: SystemEnvironment | None = None) -> None:
        self._insert(schedule, self._key(schedule, environment), program)

    def get_derived(self, schedule: Schedule, tag: str):
        """A derived compiled artifact keyed by (schedule, revision, tag).

        Navigation programs (and any future schedule-derived compile
        product) ride in the same table as playback programs: a tag
        slot distinguishes them from environment fingerprints, the
        schedule is pinned identically, and a document edit (revision
        bump) invalidates the whole pyramid level in one move.
        """
        key = (id(schedule), schedule.compiled.document.revision,
               ("derived", tag))
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry[1]

    def put_derived(self, schedule: Schedule, tag: str, value) -> None:
        key = (id(schedule), schedule.compiled.document.revision,
               ("derived", tag))
        self._insert(schedule, key, value)

    def take(self, schedule: Schedule) -> dict:
        """Remove and return every entry pinned to ``schedule``.

        The result maps each entry's level slot (see :meth:`level_of`)
        to its cached value.  The live-edit patcher calls this before a
        document's revision moves, patches the values in place, and
        re-inserts them under the successor schedule with
        :meth:`restore` — the only path on which a superseded entry
        survives an edit.
        """
        document = schedule.compiled.document
        taken: dict = {}
        doc_keys = self._by_document.get(id(document))
        if not doc_keys:
            return taken
        for key in [key for key in doc_keys
                    if key[0] == id(schedule)]:
            entry = self._entries.get(key)
            if entry is None or entry[0] is not schedule:
                continue
            doc_keys.discard(key)
            del self._entries[key]
            taken[key[2]] = entry[1]
        if not doc_keys:
            self._by_document.pop(id(document), None)
        return taken

    def restore(self, schedule: Schedule, slot, value) -> None:
        """Re-insert a :meth:`take`-n entry under ``schedule``'s key."""
        key = (id(schedule), schedule.compiled.document.revision, slot)
        self._insert(schedule, key, value)

    def program_for(self, schedule: Schedule) -> PlaybackProgram:
        """The schedule's base (environment-free) program, compiled at
        most once.  Environment-specialized programs go through
        :func:`repro.pipeline.adaptation.adapted_program_for`."""
        cached = self.get(schedule)
        if cached is not None:
            return cached
        program = compile_program(schedule)
        self.put(schedule, program)
        return program

    def clear(self) -> None:
        self._entries.clear()
        self._by_document.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def describe(self) -> str:
        return (f"program cache: {len(self._entries)} entr(y/ies), "
                f"{self.hits} hit(s), {self.misses} miss(es)")


class CompactReport:
    """One run's outcome in array-backed form.

    Summary statistics (skew, violation counts) read the arrays
    directly; ``PlayedEvent``/``ArcAudit``/``PlaybackReport`` objects
    are only built when a consumer actually asks for them, so a batch
    of thousands of replays allocates almost nothing per run.
    """

    __slots__ = ("program", "environment", "rate", "freezes_ms",
                 "seek_to_ms", "_scheduled_begin", "_scheduled_end",
                 "_actual_begin", "_actual_end", "_played_mask",
                 "_arc_results", "_nav", "_report")

    def __init__(self, program: PlaybackProgram, environment: str,
                 rate: float, freezes_ms: float, seek_to_ms: float,
                 scheduled_begin: list[float], scheduled_end: list[float],
                 actual_begin: list[float], actual_end: list[float],
                 played_mask: list[bool], arc_results,
                 navigation: list[ConflictReport]) -> None:
        self.program = program
        self.environment = environment
        self.rate = rate
        self.freezes_ms = freezes_ms
        self.seek_to_ms = seek_to_ms
        self._scheduled_begin = scheduled_begin
        self._scheduled_end = scheduled_end
        self._actual_begin = actual_begin
        self._actual_end = actual_end
        self._played_mask = played_mask
        self._arc_results = arc_results
        self._nav = navigation
        self._report = None

    # -- array-side statistics (no object materialization) ---------------

    @property
    def played_count(self) -> int:
        """How many events the run presented (post-seek)."""
        mask = self._played_mask
        if isinstance(mask, list):
            return sum(mask)
        return int(mask.sum())

    @property
    def max_skew_ms(self) -> float:
        """The worst realized start skew across all events."""
        mask = self._played_mask
        actual = self._actual_begin
        scheduled = self._scheduled_begin
        if not isinstance(actual, list):
            skew = actual[mask] - scheduled[mask]
            if skew.size == 0:
                return 0.0
            return float(abs(skew).max())
        worst = 0.0
        empty = True
        for index, hit in enumerate(mask):
            if not hit:
                continue
            empty = False
            skew = float(actual[index] - scheduled[index])
            if skew < 0:
                skew = -skew
            if skew > worst:
                worst = skew
        return 0.0 if empty else worst

    def _violation_count(self, strictness: Strictness) -> int:
        results = self._arc_results
        if not isinstance(results, list):
            return results.count_violations(strictness)
        count = 0
        for arc, result in zip(self.program.audit_arcs, results):
            if (result is not None and result[1] != 0.0
                    and arc.strictness is strictness):
                count += 1
        return count

    @property
    def must_violation_count(self) -> int:
        return self._violation_count(Strictness.MUST)

    @property
    def may_violation_count(self) -> int:
        return self._violation_count(Strictness.MAY)

    def skew_by_channel(self) -> dict[str, float]:
        """Worst absolute start skew per channel, from the arrays."""
        mask = self._played_mask
        if not isinstance(self._actual_begin, list):
            # The numpy kernel produced this report; its arc results
            # carry the compiled view (channel arrays included).
            from repro.kernel.backends import NUMPY_KERNEL
            return NUMPY_KERNEL.skew_by_channel(
                self.program, self._actual_begin,
                self._scheduled_begin, mask)
        worst: dict[str, float] = {}
        channels = self.program.channels
        channel_index = self.program.channel_index
        for index, hit in enumerate(mask):
            if not hit:
                continue
            name = channels[channel_index[index]]
            skew = float(self._actual_begin[index]
                         - self._scheduled_begin[index])
            if skew < 0:
                skew = -skew
            if skew > worst.get(name, -1.0):
                worst[name] = skew
        return worst

    # -- lazy object materialization --------------------------------------

    @property
    def navigation_conflicts(self) -> list[ConflictReport]:
        # Fresh list: the underlying one is the BatchPlayer's shared
        # per-configuration cache, which a caller must not mutate.
        return list(self._nav)

    @property
    def played(self):
        return self.materialize().played

    @property
    def audits(self):
        return self.materialize().audits

    @property
    def must_violations(self):
        return self.materialize().must_violations

    @property
    def may_violations(self):
        return self.materialize().may_violations

    def summary(self) -> str:
        return self.materialize().summary()

    def materialize(self):
        """The full :class:`~repro.pipeline.player.PlaybackReport`.

        Built once and cached; bit-identical to what the interpretive
        player returns for the same schedule, controls and RNG.
        """
        if self._report is not None:
            return self._report
        from repro.pipeline.player import (ArcAudit, PlaybackReport,
                                           PlayedEvent)
        program = self.program
        report = PlaybackReport(environment=self.environment,
                                rate=self.rate,
                                freezes_ms=self.freezes_ms)
        report.navigation_conflicts = list(self._nav)
        channels = program.channels
        channel_index = program.channel_index
        # Kernel arrays come back to pure-Python floats here, so the
        # materialized objects are type- and bit-identical to the
        # interpretive player's regardless of backend.
        mask = self._played_mask
        scheduled_begin = self._scheduled_begin
        scheduled_end = self._scheduled_end
        actual_begin = self._actual_begin
        actual_end = self._actual_end
        if not isinstance(mask, list):
            mask = mask.tolist()
        if not isinstance(scheduled_begin, list):
            scheduled_begin = scheduled_begin.tolist()
            scheduled_end = scheduled_end.tolist()
        if not isinstance(actual_begin, list):
            actual_begin = actual_begin.tolist()
            actual_end = actual_end.tolist()
        for index, hit in enumerate(mask):
            if not hit:
                continue
            report.played.append(PlayedEvent(
                node_path=program.node_paths[index],
                channel=channels[channel_index[index]],
                scheduled_begin_ms=scheduled_begin[index],
                scheduled_end_ms=scheduled_end[index],
                actual_begin_ms=actual_begin[index],
                actual_end_ms=actual_end[index]))
        for arc, result in zip(program.audit_arcs, self._arc_results):
            if result is None:
                continue
            actual, violation, low, high = result
            report.audits.append(ArcAudit(
                owner_path=arc.owner_path,
                arc_description=arc.description,
                strictness=arc.strictness,
                window=str(Window(low, high)),
                actual_ms=actual,
                violation_ms=violation))
        self._report = report
        return report


#: Distinct configurations a BatchPlayer keeps per cache table; past
#: this the least-recently-used entry (and its O(events) arrays) goes.
CONFIG_CACHE_CAPACITY = 64


def _cache_get(table: collections.OrderedDict, key):
    entry = table.get(key)
    if entry is not None:
        table.move_to_end(key)
    return entry


def _cache_put(table: collections.OrderedDict, key, value) -> None:
    table[key] = value
    table.move_to_end(key)
    while len(table) > CONFIG_CACHE_CAPACITY:
        table.popitem(last=False)


@dataclass
class SweepCell:
    """One (environment, rate, seek) point of a sweep with its runs."""

    environment: str
    rate: float
    seek_to_ms: float
    reports: list[CompactReport] = field(default_factory=list)

    @property
    def worst_skew_ms(self) -> float:
        return max((report.max_skew_ms for report in self.reports),
                   default=0.0)

    @property
    def must_violations(self) -> int:
        return sum(report.must_violation_count for report in self.reports)

    @property
    def may_violations(self) -> int:
        return sum(report.may_violation_count for report in self.reports)

    @property
    def events_played(self) -> int:
        return sum(report.played_count for report in self.reports)


class BatchPlayer:
    """Replay one compiled program many times, cheaply.

    The program is compiled (or fetched from ``program_cache``) once at
    construction; rate/freeze transforms of the time arrays and the
    per-seek navigation analysis are cached per configuration, and
    per-environment latency tables per environment — so a thousand
    replays under one configuration pay the inner array loop and the
    jitter draws, nothing else.
    """

    def __init__(self, schedule: Schedule,
                 environment: SystemEnvironment = WORKSTATION, *,
                 seed: int = 0, prefetch_lead_ms: float = 0.0,
                 strict: bool = False,
                 program: PlaybackProgram | None = None,
                 program_cache: "ProgramCache | None" = None,
                 kernel=None) -> None:
        if prefetch_lead_ms < 0:
            raise PlaybackError("prefetch lead cannot be negative")
        self.environment = environment
        self.seed = seed
        self.prefetch_lead_ms = prefetch_lead_ms
        self.strict = strict
        self.kernel = resolve_kernel(kernel)
        self.program = (program if program is not None
                        else compile_program(schedule, cache=program_cache))
        #: The program patch generation this player's caches reflect;
        #: a live edit bumps the program's shared epoch and the next
        #: :meth:`_transformed` call flushes everything derived from
        #: the patched arrays.
        self._patch_seen = self.program.patch_epoch[0]
        # Per-configuration caches, all LRU-bounded: a long-lived
        # serving player sees arbitrary per-reader rates/seeks, and
        # each entry holds O(events) arrays — these must not grow with
        # the number of distinct configurations ever seen.
        #: (rate, freeze_at, freeze_duration) -> (begin, end) arrays
        self._transforms: collections.OrderedDict[
            tuple, tuple[list[float], list[float]]] = \
            collections.OrderedDict()
        #: (transform key, seek) -> shared ConflictReport list
        self._nav: collections.OrderedDict[
            tuple, list[ConflictReport]] = collections.OrderedDict()
        #: id(environment) -> (environment, per-event latency array)
        self._latencies: collections.OrderedDict[
            int, tuple[SystemEnvironment, list[float]]] = \
            collections.OrderedDict()
        #: (transform key, seek, id(environment)) -> (environment, plan)
        self._plans: collections.OrderedDict[
            tuple, tuple[SystemEnvironment, RunPlan]] = \
            collections.OrderedDict()

    @classmethod
    def for_document(cls, document,
                     environment: SystemEnvironment = WORKSTATION, *,
                     cache: ScheduleCache | None = None,
                     **kwargs) -> "BatchPlayer":
        """Schedule (through ``cache``, if any) and wrap a document."""
        return cls(schedule_for(document, cache=cache,
                                kernel=kwargs.get("kernel")),
                   environment, **kwargs)

    def rng_for(self, replay: int = 0) -> random.Random:
        """The jitter RNG of the ``replay``-th run (seed + replay)."""
        return random.Random(self.seed + replay)

    # -- cached per-configuration state -----------------------------------

    def _transformed(self, rate: float, freeze_at_ms: float | None,
                     freeze_duration_ms: float
                     ) -> tuple[tuple, list[float], list[float]]:
        """Time arrays under rate scaling then freeze-frame insertion.

        Returns ``(key, begin, end)`` — the normalized configuration
        key is computed here only, so the transform, navigation and
        plan caches can never disagree on it.  The arithmetic mirrors
        the interpretive ``_scaled``/``_frozen`` schedule copies
        exactly (including the order: scale first, then freeze against
        the scaled clock) without building any ``Schedule`` or
        ``ScheduledEvent`` objects.
        """
        epoch = self.program.patch_epoch[0]
        if epoch != self._patch_seen:
            # A live edit patched the compiled arrays in place: every
            # cache derived from them is stale.  ``_transformed`` is
            # the single entry every replay and seek goes through, so
            # checking here covers all four tables.
            self._patch_seen = epoch
            self._transforms.clear()
            self._nav.clear()
            self._plans.clear()
            self._latencies.clear()
        freezing = freeze_at_ms is not None and freeze_duration_ms > 0
        key = (rate, freeze_at_ms if freezing else None,
               freeze_duration_ms if freezing else 0.0)
        cached = _cache_get(self._transforms, key)
        if cached is not None:
            return key, cached[0], cached[1]
        kernel = self.kernel
        program = self.program
        tb = kernel.time_array(program.begin_ms)
        te = kernel.time_array(program.end_ms)
        if rate != 1.0:
            tb = kernel.scale(tb, rate)
            te = kernel.scale(te, rate)
        if freezing:
            tb, te = kernel.freeze(tb, te, freeze_at_ms,
                                   freeze_duration_ms)
        _cache_put(self._transforms, key, (tb, te))
        return key, tb, te

    def _navigation(self, transform_key: tuple, tb: list[float],
                    te: list[float], seek_to_ms: float
                    ) -> list[ConflictReport]:
        key = (transform_key, seek_to_ms)
        cached = _cache_get(self._nav, key)
        if cached is None:
            cached = self.program.navigation_conflicts(tb, te, seek_to_ms)
            _cache_put(self._nav, key, cached)
        return cached

    def _latency_for(self, environment: SystemEnvironment) -> list[float]:
        entry = _cache_get(self._latencies, id(environment))
        if entry is None or entry[0] is not environment:
            entry = (environment, self.kernel.time_array(
                self.program.event_latencies(environment)))
            _cache_put(self._latencies, id(environment), entry)
        return entry[1]

    def _plan_for(self, transform_key: tuple, tb: list[float],
                  te: list[float], seek_to_ms: float,
                  environment: SystemEnvironment) -> RunPlan:
        key = (transform_key, seek_to_ms, id(environment))
        entry = _cache_get(self._plans, key)
        if entry is None or entry[0] is not environment:
            plan = self.kernel.build_plan(
                self.program, tb, te, seek_to_ms,
                self._latency_for(environment), self.prefetch_lead_ms)
            entry = (environment, plan)
            _cache_put(self._plans, key, entry)
        return entry[1]

    def prime_seek(self, seek_to_ms: float, *, rate: float = 1.0,
                   environment: SystemEnvironment | None = None) -> None:
        """Precompute one seek destination's run state (cache warming).

        After this, a ``run_one(seek_to_ms=...)`` for the destination
        is a pure O(1) swap to the cached :class:`RunPlan` plus the
        per-run array loop — the navigation layer warms every link
        target of a document this way, so following a link never pays
        plan or class-3 analysis work on the interactive path.
        """
        env = environment if environment is not None else self.environment
        transform_key, tb, te = self._transformed(rate, None, 0.0)
        if seek_to_ms > 0:
            self._navigation(transform_key, tb, te, seek_to_ms)
        self._plan_for(transform_key, tb, te, seek_to_ms, env)

    # -- entry points ------------------------------------------------------

    def run_one(self, *, rate: float = 1.0,
                freeze_at_ms: float | None = None,
                freeze_duration_ms: float = 0.0,
                seek_to_ms: float = 0.0,
                environment: SystemEnvironment | None = None,
                rng: random.Random | None = None,
                replay: int = 0) -> CompactReport:
        """One replay, returned in compact (lazy) form."""
        if rate <= 0:
            raise PlaybackError(f"rate must be positive, got {rate}")
        env = environment if environment is not None else self.environment
        transform_key, tb, te = self._transformed(rate, freeze_at_ms,
                                                  freeze_duration_ms)
        navigation: list[ConflictReport] = []
        if seek_to_ms > 0:
            navigation = self._navigation(transform_key, tb, te,
                                          seek_to_ms)
        if rng is None:
            rng = self.rng_for(replay)
        plan = self._plan_for(transform_key, tb, te, seek_to_ms, env)
        actual_begin, actual_end = self.kernel.run(self.program, plan,
                                                   env.jitter_ms, rng)
        played = plan.played
        arc_results = self.kernel.audit(self.program, actual_begin,
                                        actual_end, played, plan=plan)
        report = CompactReport(
            program=self.program, environment=env.name, rate=rate,
            freezes_ms=(freeze_duration_ms if freeze_at_ms is not None
                        else 0.0),
            seek_to_ms=seek_to_ms,
            scheduled_begin=tb, scheduled_end=te,
            actual_begin=actual_begin, actual_end=actual_end,
            played_mask=played, arc_results=arc_results,
            navigation=navigation)
        if self.strict and report.must_violation_count:
            worst = report.must_violations[0]
            raise PlaybackError(
                f"must synchronization violated on {env.name}: {worst}")
        return report

    def replay_many(self, replays: int, *, rate: float = 1.0,
                    freeze_at_ms: float | None = None,
                    freeze_duration_ms: float = 0.0,
                    seek_to_ms: float = 0.0,
                    environment: SystemEnvironment | None = None,
                    first_replay: int = 0) -> list[CompactReport]:
        """``replays`` runs with jitter seeds ``seed+first_replay..``."""
        if replays < 1:
            raise PlaybackError(
                f"replay count must be at least 1, got {replays}")
        return [self.run_one(rate=rate, freeze_at_ms=freeze_at_ms,
                             freeze_duration_ms=freeze_duration_ms,
                             seek_to_ms=seek_to_ms,
                             environment=environment,
                             replay=first_replay + index)
                for index in range(replays)]

    def sweep(self, environments=None, rates=(1.0,), seeks_ms=(0.0,), *,
              replays: int = 1) -> list[SweepCell]:
        """Replay across an environment × rate × seek grid.

        The program, transforms and navigation analyses are shared
        across the whole grid; each cell holds its compact reports.
        """
        targets = (tuple(environments) if environments is not None
                   else (self.environment,))
        cells: list[SweepCell] = []
        for env in targets:
            for rate in rates:
                for seek in seeks_ms:
                    cells.append(SweepCell(
                        environment=env.name, rate=rate, seek_to_ms=seek,
                        reports=self.replay_many(
                            replays, rate=rate, seek_to_ms=seek,
                            environment=env)))
        return cells
