"""Pipeline stage 4: constraint filtering tools (paper section 2).

"These tools allow the end-user presentation system to filter components
of the document to meet local processing constraints.  (This corresponds
to a mapping of the document from the virtual presentation environment
to a physical presentation environment.)  Typical filterings may include
24-bit color to 8-bit color, color to monochrome, high-resolution to low
resolution, full-frame-rate video to sub-sampled rate video."

Exactly per the paper, "this tool manages a constraint *mapping*; the
actual constraint implementation will be supported by user level,
operating system, or hardware level modules": :class:`ConstraintFilter`
produces a :class:`FilterPlan` of declarative :class:`FilterAction`
records from descriptors alone, and a separate executor
(:func:`apply_action`) realizes each action on payload data using the
:mod:`repro.media` transformations.

Action parameters come from the shared planning math in
:mod:`repro.transport.requirements` — the same projection negotiation
uses to decide whether a document is ``playable-with-filtering`` — so a
filterable verdict is a promise this stage keeps: beyond the per-device
cuts, the plan applies *bandwidth pressure* (deeper rate subsampling by
a common factor) whenever the summed stream bandwidth still exceeds the
environment's budget.  :func:`adapt_attributes` is the attribute-only
form of each action; :func:`apply_action` applies the identical
attribute update next to the payload transformation, so a document
adapted without payloads and a payload filtered with them can never
disagree about the resulting format.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Any

from repro.core.channels import Medium
from repro.core.descriptors import DataDescriptor
from repro.core.document import CompiledDocument
from repro.core.errors import DeviceConstraintError, MediaError
from repro.kernel._np import require_numpy
from repro.media.audio import downsample, merge_channels
from repro.media.image import reduce_color_depth, scale_image, to_monochrome
from repro.media.video import scale_frames, subsample_frame_rate
from repro.timing.conflicts import ConflictReport, detect_device_conflicts
from repro.transport.environments import SystemEnvironment
from repro.transport.requirements import (DocumentRequirements,
                                          EnvironmentPlan,
                                          PlannedAdaptation,
                                          planned_frame_rate,
                                          planned_sample_rate,
                                          quantized_rate,
                                          requirements_for)


class FilterKind(enum.Enum):
    """The constraint mappings the paper lists, plus channel dropping."""

    REDUCE_COLOR = "reduce-color"
    TO_MONOCHROME = "to-monochrome"
    SCALE_RESOLUTION = "scale-resolution"
    SUBSAMPLE_FRAMES = "subsample-frames"
    DOWNSAMPLE_AUDIO = "downsample-audio"
    MERGE_CHANNELS = "merge-channels"
    DROP_CHANNEL = "drop-channel"


@dataclass(frozen=True)
class FilterAction:
    """One declarative filtering step for one channel or descriptor."""

    kind: FilterKind
    channel: str
    descriptor_id: str | None
    parameters: dict[str, Any]
    reason: str

    def __str__(self) -> str:
        target = self.descriptor_id or f"channel {self.channel!r}"
        return f"{self.kind.value} on {target}: {self.reason}"


@dataclass
class FilterPlan:
    """The stage-4 output: actions plus device conflict reports.

    ``environment_plan`` carries the per-descriptor projection the
    actions were derived from (including the projected post-adaptation
    bandwidth) — the adaptation compiler and the serving engine read
    it; interactive callers can ignore it.
    """

    environment: str
    actions: list[FilterAction] = field(default_factory=list)
    conflicts: list[ConflictReport] = field(default_factory=list)
    environment_plan: EnvironmentPlan | None = None

    @property
    def dropped_channels(self) -> set[str]:
        """Channels the plan removes entirely."""
        return {action.channel for action in self.actions
                if action.kind is FilterKind.DROP_CHANNEL}

    def actions_for(self, descriptor_id: str) -> list[FilterAction]:
        """The actions applying to one descriptor."""
        return [action for action in self.actions
                if action.descriptor_id == descriptor_id]

    def describe(self) -> str:
        lines = [f"filter plan for {self.environment}:"]
        if not self.actions:
            lines.append("  (document passes unfiltered)")
        lines.extend(f"  - {action}" for action in self.actions)
        for conflict in self.conflicts:
            lines.append(f"  ! {conflict}")
        return "\n".join(lines)


class ConstraintFilter:
    """Derives a :class:`FilterPlan` from descriptors and capabilities."""

    def __init__(self, environment: SystemEnvironment) -> None:
        self.environment = environment

    def plan(self, compiled: CompiledDocument, *,
             requirements: DocumentRequirements | None = None
             ) -> FilterPlan:
        """Compute the constraint mapping for a compiled document.

        ``requirements`` reuses a cached profile (the serving path);
        without one, the profile is derived here.  Either way, the
        per-descriptor adaptation projection drives every action's
        parameters, so the plan and the negotiation verdict agree.
        """
        document = compiled.document
        if requirements is None:
            requirements = requirements_for(document, compiled=compiled)
        environment_plan = requirements.plan_for(self.environment)
        plan = FilterPlan(environment=self.environment.name,
                          environment_plan=environment_plan)
        seen: set[tuple[str, str]] = set()
        for event in compiled.events:
            key = (event.channel,
                   event.descriptor.descriptor_id if event.descriptor
                   else event.event_id)
            if key in seen:
                continue
            seen.add(key)
            self._plan_event(plan, environment_plan, event.channel,
                             event.medium, event.descriptor)
        latencies = {
            name: self.environment.latency_for(
                document.channels.lookup(name).medium)
            for name in document.channels.names()}
        plan.conflicts = detect_device_conflicts(compiled, latencies)
        return plan

    # -- per-event planning --------------------------------------------------

    def _plan_event(self, plan: FilterPlan,
                    environment_plan: EnvironmentPlan, channel: str,
                    medium: Medium,
                    descriptor: DataDescriptor | None) -> None:
        environment = self.environment
        if not environment.supports(medium):
            plan.actions.append(FilterAction(
                kind=FilterKind.DROP_CHANNEL, channel=channel,
                descriptor_id=None,
                parameters={"medium": medium.value},
                reason=f"environment {environment.name!r} does not support "
                       f"{medium.value}"))
            return
        if descriptor is None:
            return
        adaptation = environment_plan.adaptation_for(
            descriptor.descriptor_id)
        if adaptation is None or not adaptation.changed:
            return
        self._plan_color(plan, channel, descriptor, adaptation)
        self._plan_resolution(plan, channel, descriptor, adaptation)
        self._plan_frame_rate(plan, channel, descriptor, adaptation)
        self._plan_audio(plan, channel, descriptor, adaptation)

    def _plan_color(self, plan: FilterPlan, channel: str,
                    descriptor: DataDescriptor,
                    adaptation: PlannedAdaptation) -> None:
        if adaptation.color_depth is None:
            return
        environment = self.environment
        depth = adaptation.demand.color_depth
        if environment.color_depth <= 1:
            plan.actions.append(FilterAction(
                kind=FilterKind.TO_MONOCHROME, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={},
                reason=f"{depth}-bit colour on a monochrome display"))
        else:
            plan.actions.append(FilterAction(
                kind=FilterKind.REDUCE_COLOR, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={
                    "bits_per_channel": adaptation.color_depth // 3},
                reason=f"{depth}-bit colour exceeds the display's "
                       f"{environment.color_depth}-bit depth"))

    def _plan_resolution(self, plan: FilterPlan, channel: str,
                         descriptor: DataDescriptor,
                         adaptation: PlannedAdaptation) -> None:
        if adaptation.resolution is None:
            return
        environment = self.environment
        width, height = adaptation.demand.resolution
        plan.actions.append(FilterAction(
            kind=FilterKind.SCALE_RESOLUTION, channel=channel,
            descriptor_id=descriptor.descriptor_id,
            parameters={
                "target_width": adaptation.resolution[0],
                "target_height": adaptation.resolution[1],
            },
            reason=f"{width}x{height} exceeds the "
                   f"{environment.screen_width}x"
                   f"{environment.screen_height} screen"))

    def _plan_frame_rate(self, plan: FilterPlan, channel: str,
                         descriptor: DataDescriptor,
                         adaptation: PlannedAdaptation) -> None:
        if adaptation.frame_rate is None:
            return
        environment = self.environment
        rate = adaptation.demand.frame_rate
        device_rate = planned_frame_rate(rate, environment)
        if device_rate is not None \
                and adaptation.frame_rate >= device_rate:
            reason = (f"{rate:g}fps exceeds the device's "
                      f"{environment.max_frame_rate:g}fps")
        else:
            reason = (f"{rate:g}fps subsampled to fit the "
                      f"{environment.bandwidth_bps}bps stream budget")
        plan.actions.append(FilterAction(
            kind=FilterKind.SUBSAMPLE_FRAMES, channel=channel,
            descriptor_id=descriptor.descriptor_id,
            parameters={"target_rate": adaptation.frame_rate},
            reason=reason))

    def _plan_audio(self, plan: FilterPlan, channel: str,
                    descriptor: DataDescriptor,
                    adaptation: PlannedAdaptation) -> None:
        environment = self.environment
        if adaptation.sample_rate is not None:
            rate = adaptation.demand.sample_rate
            device_rate = planned_sample_rate(rate, environment)
            if device_rate is not None \
                    and adaptation.sample_rate >= device_rate:
                reason = (f"{rate:g}Hz exceeds the device's "
                          f"{environment.max_sample_rate:g}Hz")
            else:
                reason = (f"{rate:g}Hz downsampled to fit the "
                          f"{environment.bandwidth_bps}bps stream budget")
            plan.actions.append(FilterAction(
                kind=FilterKind.DOWNSAMPLE_AUDIO, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={"target_rate": adaptation.sample_rate},
                reason=reason))
        if adaptation.audio_channels is not None:
            channels = adaptation.demand.audio_channels
            plan.actions.append(FilterAction(
                kind=FilterKind.MERGE_CHANNELS, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={"target_channels": adaptation.audio_channels},
                reason=f"{channels}-channel layout exceeds the device's "
                       f"{environment.audio_channels} channel(s)"))


def _scale_stream_bandwidth(attributes: dict[str, Any],
                            ratio: float) -> None:
    """Scale the declared stream bandwidth by a reduction ratio.

    Truncation matches (and can only undershoot) the negotiation
    projection's single-``int`` arithmetic, so adapted documents never
    demand more bandwidth than the projection promised.
    """
    resources = attributes.get("resources")
    if not resources or "bandwidth-bps" not in resources:
        return
    updated = dict(resources)
    updated["bandwidth-bps"] = int(updated["bandwidth-bps"] * ratio)
    attributes["resources"] = updated


def adapt_attributes(action: FilterAction,
                     attributes: dict[str, Any]) -> dict[str, Any]:
    """The attribute-only effect of one filter action.

    This is the single place an action's format consequences are
    written down: :func:`apply_action` uses it next to the payload
    transformation, and the adaptation compiler uses it to adapt whole
    documents without touching payload bytes — so the two paths cannot
    drift apart.  Returns a new attribute mapping.
    """
    updated = dict(attributes)
    kind = action.kind
    if kind is FilterKind.REDUCE_COLOR:
        depth = int(updated.get("color-depth", 0))
        bits = action.parameters["bits_per_channel"]
        updated["color-depth"] = bits * 3
        if depth > 0:
            _scale_stream_bandwidth(updated, (bits * 3) / depth)
    elif kind is FilterKind.TO_MONOCHROME:
        depth = int(updated.get("color-depth", 0))
        updated["color-depth"] = 1
        if depth > 0:
            _scale_stream_bandwidth(updated, 1 / depth)
    elif kind is FilterKind.SCALE_RESOLUTION:
        width = action.parameters["target_width"]
        height = action.parameters["target_height"]
        previous = updated.get("resolution")
        updated["resolution"] = (width, height)
        if previous and int(previous[0]) and int(previous[1]):
            _scale_stream_bandwidth(
                updated,
                (width * height) / (int(previous[0]) * int(previous[1])))
    elif kind is FilterKind.SUBSAMPLE_FRAMES:
        rate = float(updated.get("frame-rate", 25.0))
        achieved = quantized_rate(rate,
                                  action.parameters["target_rate"])
        step = math.ceil(rate / action.parameters["target_rate"] - 1e-9) \
            if action.parameters["target_rate"] < rate else 1
        updated["frame-rate"] = achieved
        if "frames" in updated:
            # frames[::step] keeps ceil(n / step) frames.
            updated["frames"] = -(-int(updated["frames"]) // step)
        if rate > 0:
            _scale_stream_bandwidth(updated, achieved / rate)
    elif kind is FilterKind.DOWNSAMPLE_AUDIO:
        rate = float(updated.get("sample-rate", 44100.0))
        target = action.parameters["target_rate"]
        if target < rate:
            factor = math.ceil(rate / target - 1e-9)
        else:
            factor = 1
        achieved = rate / factor
        updated["sample-rate"] = achieved
        if "samples" in updated:
            # The decimator emits one window mean per full window, but
            # never less than a single sample.
            updated["samples"] = max(1, int(updated["samples"]) // factor)
        if rate > 0:
            _scale_stream_bandwidth(updated, achieved / rate)
    elif kind is FilterKind.MERGE_CHANNELS:
        channels = int(updated.get("channels", 0) or 0)
        target = action.parameters["target_channels"]
        if channels > target:
            updated["channels"] = target
            if channels > 0:
                _scale_stream_bandwidth(updated, target / channels)
    elif kind is FilterKind.DROP_CHANNEL:
        raise DeviceConstraintError(
            "drop-channel actions remove events; they have no attribute "
            "transformation")
    else:  # pragma: no cover - exhaustive over FilterKind
        raise MediaError(f"unknown filter action {action.kind}")
    return updated


def apply_action(action: FilterAction, payload: Any,
                 descriptor: DataDescriptor) -> tuple[Any, DataDescriptor]:
    """Execute one filter action on concrete payload data.

    Returns the transformed payload and an updated descriptor whose
    attributes reflect the new format (the receiving tools keep working
    from attributes, so the mapping must keep them truthful).  The
    attribute update is :func:`adapt_attributes`, the same function the
    document-level adaptation uses.
    """
    if action.kind is FilterKind.REDUCE_COLOR:
        bits = action.parameters["bits_per_channel"]
        transformed = _map_frames(payload, descriptor,
                                  lambda a: reduce_color_depth(a, bits))
    elif action.kind is FilterKind.TO_MONOCHROME:
        transformed = _map_frames(payload, descriptor, to_monochrome)
    elif action.kind is FilterKind.SCALE_RESOLUTION:
        width = action.parameters["target_width"]
        height = action.parameters["target_height"]
        if descriptor.medium is Medium.VIDEO:
            transformed = scale_frames(payload, width, height)
        else:
            transformed = scale_image(payload, width, height)
    elif action.kind is FilterKind.SUBSAMPLE_FRAMES:
        rate = float(descriptor.get("frame-rate", 25.0))
        transformed, _achieved = subsample_frame_rate(
            payload, rate, action.parameters["target_rate"])
    elif action.kind is FilterKind.DOWNSAMPLE_AUDIO:
        np = require_numpy("audio downsampling")
        rate = float(descriptor.get("sample-rate", 44100.0))
        transformed, _achieved = downsample(
            np.asarray(payload), rate, action.parameters["target_rate"])
    elif action.kind is FilterKind.MERGE_CHANNELS:
        np = require_numpy("audio channel merging")
        transformed = merge_channels(
            np.asarray(payload), action.parameters["target_channels"])
    elif action.kind is FilterKind.DROP_CHANNEL:
        raise DeviceConstraintError(
            "drop-channel actions remove events; they have no payload "
            "transformation")
    else:  # pragma: no cover - exhaustive over FilterKind
        raise MediaError(f"unknown filter action {action.kind}")
    attributes = adapt_attributes(action, dict(descriptor.attributes))
    if action.kind is FilterKind.SUBSAMPLE_FRAMES:
        attributes["frames"] = len(transformed)
    elif action.kind is FilterKind.DOWNSAMPLE_AUDIO:
        attributes["samples"] = len(transformed)
    updated = DataDescriptor(
        descriptor_id=descriptor.descriptor_id,
        medium=descriptor.medium,
        block_id=descriptor.block_id,
        attributes=attributes,
    )
    return transformed, updated


def _map_frames(payload: Any, descriptor: DataDescriptor, transform) -> Any:
    """Apply a per-image transform to an image or every video frame."""
    np = require_numpy("image/video payload filtering")
    array = np.asarray(payload)
    if descriptor.medium is Medium.VIDEO:
        return np.stack([transform(frame) for frame in array])
    return transform(array)
