"""Pipeline stage 4: constraint filtering tools (paper section 2).

"These tools allow the end-user presentation system to filter components
of the document to meet local processing constraints.  (This corresponds
to a mapping of the document from the virtual presentation environment
to a physical presentation environment.)  Typical filterings may include
24-bit color to 8-bit color, color to monochrome, high-resolution to low
resolution, full-frame-rate video to sub-sampled rate video."

Exactly per the paper, "this tool manages a constraint *mapping*; the
actual constraint implementation will be supported by user level,
operating system, or hardware level modules": :class:`ConstraintFilter`
produces a :class:`FilterPlan` of declarative :class:`FilterAction`
records from descriptors alone, and a separate executor
(:func:`apply_action`) realizes each action on payload data using the
:mod:`repro.media` transformations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.channels import Medium
from repro.core.descriptors import DataDescriptor
from repro.core.document import CmifDocument, CompiledDocument
from repro.core.errors import DeviceConstraintError, MediaError
from repro.media.audio import downsample
from repro.media.image import reduce_color_depth, scale_image, to_monochrome
from repro.media.video import scale_frames, subsample_frame_rate
from repro.timing.conflicts import ConflictReport, detect_device_conflicts
from repro.transport.environments import SystemEnvironment


class FilterKind(enum.Enum):
    """The constraint mappings the paper lists, plus channel dropping."""

    REDUCE_COLOR = "reduce-color"
    TO_MONOCHROME = "to-monochrome"
    SCALE_RESOLUTION = "scale-resolution"
    SUBSAMPLE_FRAMES = "subsample-frames"
    DOWNSAMPLE_AUDIO = "downsample-audio"
    DROP_CHANNEL = "drop-channel"


@dataclass(frozen=True)
class FilterAction:
    """One declarative filtering step for one channel or descriptor."""

    kind: FilterKind
    channel: str
    descriptor_id: str | None
    parameters: dict[str, Any]
    reason: str

    def __str__(self) -> str:
        target = self.descriptor_id or f"channel {self.channel!r}"
        return f"{self.kind.value} on {target}: {self.reason}"


@dataclass
class FilterPlan:
    """The stage-4 output: actions plus device conflict reports."""

    environment: str
    actions: list[FilterAction] = field(default_factory=list)
    conflicts: list[ConflictReport] = field(default_factory=list)

    @property
    def dropped_channels(self) -> set[str]:
        """Channels the plan removes entirely."""
        return {action.channel for action in self.actions
                if action.kind is FilterKind.DROP_CHANNEL}

    def actions_for(self, descriptor_id: str) -> list[FilterAction]:
        """The actions applying to one descriptor."""
        return [action for action in self.actions
                if action.descriptor_id == descriptor_id]

    def describe(self) -> str:
        lines = [f"filter plan for {self.environment}:"]
        if not self.actions:
            lines.append("  (document passes unfiltered)")
        lines.extend(f"  - {action}" for action in self.actions)
        for conflict in self.conflicts:
            lines.append(f"  ! {conflict}")
        return "\n".join(lines)


class ConstraintFilter:
    """Derives a :class:`FilterPlan` from descriptors and capabilities."""

    def __init__(self, environment: SystemEnvironment) -> None:
        self.environment = environment

    def plan(self, compiled: CompiledDocument) -> FilterPlan:
        """Compute the constraint mapping for a compiled document."""
        plan = FilterPlan(environment=self.environment.name)
        document = compiled.document
        seen: set[tuple[str, str]] = set()
        for event in compiled.events:
            key = (event.channel,
                   event.descriptor.descriptor_id if event.descriptor
                   else event.event_id)
            if key in seen:
                continue
            seen.add(key)
            self._plan_event(plan, document, event.channel, event.medium,
                             event.descriptor)
        latencies = {
            name: self.environment.latency_for(
                document.channels.lookup(name).medium)
            for name in document.channels.names()}
        plan.conflicts = detect_device_conflicts(compiled, latencies)
        return plan

    # -- per-event planning --------------------------------------------------

    def _plan_event(self, plan: FilterPlan, document: CmifDocument,
                    channel: str, medium: Medium,
                    descriptor: DataDescriptor | None) -> None:
        environment = self.environment
        if not environment.supports(medium):
            plan.actions.append(FilterAction(
                kind=FilterKind.DROP_CHANNEL, channel=channel,
                descriptor_id=None,
                parameters={"medium": medium.value},
                reason=f"environment {environment.name!r} does not support "
                       f"{medium.value}"))
            return
        if descriptor is None:
            return
        if medium in (Medium.IMAGE, Medium.VIDEO):
            self._plan_visual(plan, channel, descriptor)
        if medium is Medium.VIDEO:
            self._plan_frame_rate(plan, channel, descriptor)
        if medium is Medium.AUDIO:
            self._plan_audio(plan, channel, descriptor)

    def _plan_visual(self, plan: FilterPlan, channel: str,
                     descriptor: DataDescriptor) -> None:
        environment = self.environment
        depth = int(descriptor.get("color-depth", 0))
        if depth > environment.color_depth:
            if environment.color_depth <= 1:
                plan.actions.append(FilterAction(
                    kind=FilterKind.TO_MONOCHROME, channel=channel,
                    descriptor_id=descriptor.descriptor_id,
                    parameters={},
                    reason=f"{depth}-bit colour on a monochrome display"))
            else:
                bits = max(1, environment.color_depth // 3)
                plan.actions.append(FilterAction(
                    kind=FilterKind.REDUCE_COLOR, channel=channel,
                    descriptor_id=descriptor.descriptor_id,
                    parameters={"bits_per_channel": bits},
                    reason=f"{depth}-bit colour exceeds the display's "
                           f"{environment.color_depth}-bit depth"))
        resolution = descriptor.get("resolution")
        if resolution:
            width, height = int(resolution[0]), int(resolution[1])
            if width > environment.screen_width \
                    or height > environment.screen_height:
                scale = min(environment.screen_width / width,
                            environment.screen_height / height)
                plan.actions.append(FilterAction(
                    kind=FilterKind.SCALE_RESOLUTION, channel=channel,
                    descriptor_id=descriptor.descriptor_id,
                    parameters={
                        "target_width": max(1, int(width * scale)),
                        "target_height": max(1, int(height * scale)),
                    },
                    reason=f"{width}x{height} exceeds the "
                           f"{environment.screen_width}x"
                           f"{environment.screen_height} screen"))

    def _plan_frame_rate(self, plan: FilterPlan, channel: str,
                         descriptor: DataDescriptor) -> None:
        environment = self.environment
        rate = float(descriptor.get("frame-rate", 0.0))
        if rate > environment.max_frame_rate > 0:
            plan.actions.append(FilterAction(
                kind=FilterKind.SUBSAMPLE_FRAMES, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={"target_rate": environment.max_frame_rate},
                reason=f"{rate:g}fps exceeds the device's "
                       f"{environment.max_frame_rate:g}fps"))

    def _plan_audio(self, plan: FilterPlan, channel: str,
                    descriptor: DataDescriptor) -> None:
        environment = self.environment
        rate = float(descriptor.get("sample-rate", 0.0))
        if rate > environment.max_sample_rate > 0:
            plan.actions.append(FilterAction(
                kind=FilterKind.DOWNSAMPLE_AUDIO, channel=channel,
                descriptor_id=descriptor.descriptor_id,
                parameters={"target_rate": environment.max_sample_rate},
                reason=f"{rate:g}Hz exceeds the device's "
                       f"{environment.max_sample_rate:g}Hz"))


def apply_action(action: FilterAction, payload: Any,
                 descriptor: DataDescriptor) -> tuple[Any, DataDescriptor]:
    """Execute one filter action on concrete payload data.

    Returns the transformed payload and an updated descriptor whose
    attributes reflect the new format (the receiving tools keep working
    from attributes, so the mapping must keep them truthful).
    """
    attributes = dict(descriptor.attributes)
    if action.kind is FilterKind.REDUCE_COLOR:
        bits = action.parameters["bits_per_channel"]
        transformed = _map_frames(payload, descriptor,
                                  lambda a: reduce_color_depth(a, bits))
        attributes["color-depth"] = bits * 3
    elif action.kind is FilterKind.TO_MONOCHROME:
        transformed = _map_frames(payload, descriptor, to_monochrome)
        attributes["color-depth"] = 1
    elif action.kind is FilterKind.SCALE_RESOLUTION:
        width = action.parameters["target_width"]
        height = action.parameters["target_height"]
        if descriptor.medium is Medium.VIDEO:
            transformed = scale_frames(payload, width, height)
        else:
            transformed = scale_image(payload, width, height)
        attributes["resolution"] = (width, height)
    elif action.kind is FilterKind.SUBSAMPLE_FRAMES:
        rate = float(descriptor.get("frame-rate", 25.0))
        transformed, achieved = subsample_frame_rate(
            payload, rate, action.parameters["target_rate"])
        attributes["frame-rate"] = achieved
        attributes["frames"] = len(transformed)
    elif action.kind is FilterKind.DOWNSAMPLE_AUDIO:
        rate = float(descriptor.get("sample-rate", 44100.0))
        transformed, achieved = downsample(
            np.asarray(payload), rate, action.parameters["target_rate"])
        attributes["sample-rate"] = achieved
        attributes["samples"] = len(transformed)
    elif action.kind is FilterKind.DROP_CHANNEL:
        raise DeviceConstraintError(
            "drop-channel actions remove events; they have no payload "
            "transformation")
    else:  # pragma: no cover - exhaustive over FilterKind
        raise MediaError(f"unknown filter action {action.kind}")
    updated = DataDescriptor(
        descriptor_id=descriptor.descriptor_id,
        medium=descriptor.medium,
        block_id=descriptor.block_id,
        attributes=attributes,
    )
    return transformed, updated


def _map_frames(payload: Any, descriptor: DataDescriptor, transform) -> Any:
    """Apply a per-image transform to an image or every video frame."""
    array = np.asarray(payload)
    if descriptor.medium is Medium.VIDEO:
        return np.stack([transform(frame) for frame in array])
    return transform(array)
