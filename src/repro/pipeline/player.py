"""Pipeline stage 5b: the document player (discrete-event simulation).

Stands in for a real-time presentation engine (DESIGN.md substitution
table).  The player executes a :class:`~repro.timing.schedule.Schedule`
against per-channel device models (start latency + deterministic jitter,
taken from a :class:`~repro.transport.environments.SystemEnvironment`)
and *audits* the resulting actual times against every explicit
synchronization arc: the paper's synchronization equation ``tref + delta
<= tactual <= tref + epsilon`` is checked literally, with *must*
violations reported as errors and *may* violations as warnings.

Reader controls from the paper are supported: "it is possible to alter
the rate of presentation (such as freeze-framing or using slow-motion),
[but] it is not possible to alter the order of events" — rate scaling,
freeze-frame holds, and fast-forward navigation (which triggers the
class-3 conflict analysis of section 5.3.3).  Pre-scheduling is modelled
by a prefetch lead: events may be dispatched to their device early,
which is what makes negative minimum delays realizable ("this might be
possible to a limited degree if an implementation environment supports
pre-fetching and pre-scheduling of events").

Since the compiled-playback PR, :meth:`Player.play` runs on the batch
replay engine (:mod:`repro.pipeline.program`): the schedule is lowered
to a :class:`~repro.pipeline.program.PlaybackProgram` once per
(schedule, revision) and each run is array arithmetic.  The original
interpretive loop survives as :meth:`Player.play_reference`; the two
paths are bit-identical, which the equivalence tests and the playback
bench gate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.errors import PlaybackError
from repro.core.nodes import Node
from repro.core.paths import path_map, resolve_path
from repro.core.syncarc import Anchor, ConditionalArc, Strictness
from repro.core.tree import iter_postorder
from repro.pipeline.program import BatchPlayer
from repro.timing.conflicts import (ConflictReport, invalid_arcs_after_seek)
from repro.timing.intervals import arc_window
from repro.timing.schedule import Schedule, ScheduleCache, schedule_for
from repro.transport.environments import SystemEnvironment, WORKSTATION


@dataclass(frozen=True)
class PlayedEvent:
    """One event's realized presentation, next to its scheduled times."""

    node_path: str
    channel: str
    scheduled_begin_ms: float
    scheduled_end_ms: float
    actual_begin_ms: float
    actual_end_ms: float

    @property
    def begin_skew_ms(self) -> float:
        """Realized start minus scheduled start (positive = late)."""
        return self.actual_begin_ms - self.scheduled_begin_ms


@dataclass(frozen=True)
class ArcAudit:
    """The audit of one explicit arc against realized times."""

    owner_path: str
    arc_description: str
    strictness: Strictness
    window: str
    actual_ms: float
    violation_ms: float

    @property
    def satisfied(self) -> bool:
        """True when the destination landed inside the arc's window."""
        return self.violation_ms == 0.0

    def __str__(self) -> str:
        state = ("ok" if self.satisfied
                 else f"violated by {self.violation_ms:+.1f}ms")
        return (f"{self.strictness.value} arc at {self.owner_path}: "
                f"window {self.window}, actual {self.actual_ms:.1f}ms "
                f"[{state}]")


@dataclass
class PlaybackReport:
    """The full outcome of one playback run."""

    environment: str
    played: list[PlayedEvent] = field(default_factory=list)
    audits: list[ArcAudit] = field(default_factory=list)
    navigation_conflicts: list[ConflictReport] = field(default_factory=list)
    freezes_ms: float = 0.0
    rate: float = 1.0

    @property
    def played_count(self) -> int:
        """Events played — duck-compatible with ``CompactReport``, so
        serving callers can consume either report shape."""
        return len(self.played)

    def materialize(self) -> "PlaybackReport":
        """This report already is the full form — duck-compatible with
        ``CompactReport.materialize()`` for consumers that may hold
        either shape (a degraded replay hands them this one)."""
        return self

    @property
    def must_violations(self) -> list[ArcAudit]:
        """Audits of must arcs that missed their window (hard errors)."""
        return [audit for audit in self.audits
                if audit.strictness is Strictness.MUST
                and not audit.satisfied]

    @property
    def may_violations(self) -> list[ArcAudit]:
        """Audits of may arcs that missed their window (tolerated)."""
        return [audit for audit in self.audits
                if audit.strictness is Strictness.MAY
                and not audit.satisfied]

    @property
    def max_skew_ms(self) -> float:
        """The worst realized start skew across all events."""
        if not self.played:
            return 0.0
        return max(abs(event.begin_skew_ms) for event in self.played)

    def skew_by_channel(self) -> dict[str, float]:
        """Worst absolute start skew per channel."""
        worst: dict[str, float] = {}
        for event in self.played:
            worst[event.channel] = max(worst.get(event.channel, 0.0),
                                       abs(event.begin_skew_ms))
        return worst

    def summary(self) -> str:
        lines = [
            f"playback on {self.environment}: {len(self.played)} events, "
            f"rate {self.rate:g}x, max skew {self.max_skew_ms:.1f}ms",
            f"  must arcs violated: {len(self.must_violations)}, "
            f"may arcs violated: {len(self.may_violations)}",
        ]
        for audit in self.must_violations:
            lines.append(f"  !! {audit}")
        for report in self.navigation_conflicts:
            lines.append(f"  ~ {report}")
        return "\n".join(lines)


class Player:
    """Discrete-event playback of a schedule on a device model.

    Jitter is *deterministic*: every run draws from an explicit
    :class:`random.Random` — either one passed to :meth:`play` or a
    fresh ``random.Random(seed)`` per run — never from the module-level
    ``random`` state.  Replays with the same seed therefore reproduce
    the same report bit for bit, which is what lets the schedule cache
    reuse one solved timeline across replays and seeks.

    :meth:`play` executes through a compiled playback program held in a
    one-slot cache keyed on (schedule identity, document revision) — the
    same guard the schedule cache uses, so an edited document can never
    be audited against a stale path map.  :meth:`play_reference` is the
    original interpretive loop, kept as the engine's oracle.
    """

    def __init__(self, environment: SystemEnvironment = WORKSTATION, *,
                 seed: int = 0, prefetch_lead_ms: float = 0.0,
                 strict: bool = False,
                 cache: ScheduleCache | None = None) -> None:
        self.environment = environment
        self.seed = seed
        if prefetch_lead_ms < 0:
            raise PlaybackError("prefetch lead cannot be negative")
        self.prefetch_lead_ms = prefetch_lead_ms
        self.strict = strict
        self.cache = cache
        # One-slot compiled-program engine (see class docstring).
        self._batch: BatchPlayer | None = None
        # One-slot node-path cache for the reference path: replays and
        # seeks audit the same compiled document over and over; holding
        # the compiled object pins its identity, and the revision guards
        # against edits.
        self._paths_compiled = None
        self._paths_revision: int | None = None
        self._paths: dict[int, str] | None = None

    def _paths_for(self, schedule: Schedule) -> dict[int, str]:
        """Root-relative paths for the schedule's document, cached."""
        compiled = schedule.compiled
        revision = compiled.document.revision
        if (self._paths_compiled is not compiled
                or self._paths_revision != revision
                or self._paths is None):
            self._paths = path_map(compiled.document.root)
            self._paths_compiled = compiled
            self._paths_revision = revision
        return self._paths

    def _batch_for(self, schedule: Schedule) -> BatchPlayer:
        """The compiled engine for ``schedule``, rebuilt on change.

        The slot also tracks the player's own mutable settings
        (environment, seed, prefetch, strict): the seed loop read them
        live on every run, so a player reconfigured between plays must
        get a fresh engine rather than a stale one.
        """
        revision = schedule.compiled.document.revision
        batch = self._batch
        same_program = (batch is not None
                        and batch.program.schedule is schedule
                        and batch.program.revision == revision)
        if (not same_program
                or batch.environment is not self.environment
                or batch.seed != self.seed
                or batch.prefetch_lead_ms != self.prefetch_lead_ms
                or batch.strict != self.strict):
            batch = BatchPlayer(schedule, self.environment,
                                seed=self.seed,
                                prefetch_lead_ms=self.prefetch_lead_ms,
                                strict=self.strict,
                                program=(batch.program if same_program
                                         else None))
            self._batch = batch
        return batch

    def rng_for(self, replay: int = 0) -> random.Random:
        """The jitter RNG of the ``replay``-th run (seed + replay)."""
        return random.Random(self.seed + replay)

    # -- core playback -----------------------------------------------------

    def play_document(self, document, *, rate: float = 1.0,
                      freeze_at_ms: float | None = None,
                      freeze_duration_ms: float = 0.0,
                      seek_to_ms: float = 0.0,
                      rng: random.Random | None = None) -> PlaybackReport:
        """Schedule (through the cache, if any) and play a document.

        Replays and seeks at an unchanged document revision reuse the
        cached timeline instead of re-running the solver.
        """
        schedule = schedule_for(document, cache=self.cache)
        return self.play(schedule, rate=rate, freeze_at_ms=freeze_at_ms,
                         freeze_duration_ms=freeze_duration_ms,
                         seek_to_ms=seek_to_ms, rng=rng)

    def play(self, schedule: Schedule, *, rate: float = 1.0,
             freeze_at_ms: float | None = None,
             freeze_duration_ms: float = 0.0,
             seek_to_ms: float = 0.0,
             rng: random.Random | None = None) -> PlaybackReport:
        """Simulate one presentation run (compiled engine).

        ``rate`` scales presentation time (2.0 = slow motion at half
        speed); ``freeze_at_ms``/``freeze_duration_ms`` hold the
        presentation (freeze-frame) at a point, shifting everything after
        it; ``seek_to_ms`` fast-forwards past the beginning, skipping
        events that end before the seek point and triggering the class-3
        navigation analysis.  ``rng`` injects the jitter source; when
        omitted, a fresh ``random.Random(self.seed)`` makes the run
        reproducible.

        The run executes over the schedule's compiled
        :class:`~repro.pipeline.program.PlaybackProgram`; the report is
        bit-identical to :meth:`play_reference` on the same inputs.
        """
        if rate <= 0:
            raise PlaybackError(f"rate must be positive, got {rate}")
        batch = self._batch_for(schedule)
        if rng is None:
            rng = self.rng_for(0)
        compact = batch.run_one(rate=rate, freeze_at_ms=freeze_at_ms,
                                freeze_duration_ms=freeze_duration_ms,
                                seek_to_ms=seek_to_ms, rng=rng)
        return compact.materialize()

    def play_reference(self, schedule: Schedule, *, rate: float = 1.0,
                       freeze_at_ms: float | None = None,
                       freeze_duration_ms: float = 0.0,
                       seek_to_ms: float = 0.0,
                       rng: random.Random | None = None
                       ) -> PlaybackReport:
        """The interpretive run: tree walks, schedule copies, dicts.

        This is the original (pre-compilation) playback loop, kept as
        the oracle the batch engine is audited against — the equivalence
        tests and ``benchmarks/bench_playback.py`` both compare against
        it.  Events are dispatched in the schedule's canonical
        :func:`~repro.timing.schedule.event_order` (begin, end, id).
        """
        if rate <= 0:
            raise PlaybackError(f"rate must be positive, got {rate}")
        working = schedule
        if rate != 1.0:
            working = _scaled(schedule, rate)
        if freeze_at_ms is not None and freeze_duration_ms > 0:
            working = _frozen(working, freeze_at_ms, freeze_duration_ms)

        report = PlaybackReport(environment=self.environment.name,
                                rate=rate,
                                freezes_ms=freeze_duration_ms
                                if freeze_at_ms is not None else 0.0)
        if seek_to_ms > 0:
            report.navigation_conflicts = invalid_arcs_after_seek(
                working, seek_to_ms)

        if rng is None:
            rng = self.rng_for(0)
        channel_free: dict[str, float] = {}
        actual_times: dict[str, tuple[float, float]] = {}
        for scheduled in working.ordered_events():
            if scheduled.end_ms <= seek_to_ms:
                continue
            medium = scheduled.event.medium
            latency = self.environment.latency_for(medium)
            jitter = (rng.uniform(0.0, self.environment.jitter_ms)
                      if self.environment.jitter_ms > 0 else 0.0)
            # Prefetch may pre-roll before the presentation starts (the
            # device loads media during setup), but never before a seek
            # point — the reader only just decided to jump there.
            dispatch = scheduled.begin_ms - self.prefetch_lead_ms
            if seek_to_ms > 0:
                dispatch = max(dispatch, seek_to_ms)
            ready = dispatch + latency + jitter
            free = channel_free.get(scheduled.event.channel, 0.0)
            actual_begin = max(scheduled.begin_ms, ready, free)
            actual_end = actual_begin + scheduled.duration_ms
            channel_free[scheduled.event.channel] = actual_end
            played = PlayedEvent(
                node_path=scheduled.event.node_path,
                channel=scheduled.event.channel,
                scheduled_begin_ms=scheduled.begin_ms,
                scheduled_end_ms=scheduled.end_ms,
                actual_begin_ms=actual_begin,
                actual_end_ms=actual_end,
            )
            report.played.append(played)
            actual_times[played.node_path] = (actual_begin, actual_end)

        report.audits = self._audit_arcs(working, actual_times)
        if self.strict and report.must_violations:
            worst = report.must_violations[0]
            raise PlaybackError(
                f"must synchronization violated on "
                f"{self.environment.name}: {worst}")
        return report

    # -- arc auditing ---------------------------------------------------------

    def _audit_arcs(self, schedule: Schedule,
                    actual_times: dict[str, tuple[float, float]]
                    ) -> list[ArcAudit]:
        document = schedule.compiled.document
        paths = self._paths_for(schedule)
        node_times = _node_actual_times(document.root, actual_times,
                                        paths)
        audits: list[ArcAudit] = []
        for node in _nodes_with_arcs(document.root):
            for arc in node.arcs:
                if isinstance(arc, ConditionalArc):
                    continue
                source = resolve_path(node, arc.source)
                destination = resolve_path(node, arc.destination)
                source_times = node_times.get(id(source))
                destination_times = node_times.get(id(destination))
                if source_times is None or destination_times is None:
                    continue  # endpoint skipped by a seek
                tref = (source_times[0] if arc.src_anchor is Anchor.BEGIN
                        else source_times[1])
                actual = (destination_times[0]
                          if arc.dst_anchor is Anchor.BEGIN
                          else destination_times[1])
                # Windows anchor at the *realized* source time, so rate
                # changes and freezes shift them automatically; only the
                # [delta, epsilon] tolerance stays authored-real-time.
                window = arc_window(arc, tref, document.timebase)
                audits.append(ArcAudit(
                    owner_path=paths[id(node)],
                    arc_description=arc.describe(),
                    strictness=arc.strictness,
                    window=str(window),
                    actual_ms=actual,
                    violation_ms=window.violation_ms(actual),
                ))
        return audits


def _nodes_with_arcs(root: Node):
    for node in iter_postorder(root):
        if node.arcs:
            yield node


def _node_actual_times(root: Node,
                       leaf_times: dict[str, tuple[float, float]],
                       paths: dict[int, str]
                       ) -> dict[int, tuple[float, float]]:
    """Realized (begin, end) for every node, composed up from leaves.

    ``paths`` must cover every node of ``root``'s tree — callers pass
    the player's cached :func:`~repro.core.paths.path_map`, so the walk
    never falls back to per-node parent-chain recomputation.
    """
    times: dict[int, tuple[float, float]] = {}
    for node in iter_postorder(root):
        if node.is_leaf:
            played = leaf_times.get(paths[id(node)])
            if played is not None:
                times[id(node)] = played
            continue
        child_times = [times[id(child)] for child in node.children
                       if id(child) in times]
        if child_times:
            times[id(node)] = (min(t[0] for t in child_times),
                               max(t[1] for t in child_times))
    return times


def _scaled(schedule: Schedule, rate: float) -> Schedule:
    """The schedule with all times multiplied by ``rate``.

    A positive scale preserves the canonical event order, so the copy
    is built from (and pre-seeds) the cached order.
    """
    from repro.timing.schedule import ScheduledEvent
    events = [ScheduledEvent(e.event, e.begin_ms * rate, e.end_ms * rate)
              for e in schedule.ordered_events()]
    scaled = Schedule(
        compiled=schedule.compiled,
        times_ms={var: t * rate for var, t in schedule.times_ms.items()},
        events=events,
        dropped_constraints=list(schedule.dropped_constraints),
        solver_iterations=schedule.solver_iterations,
    )
    scaled._ordered = tuple(events)
    return scaled


def _frozen(schedule: Schedule, at_ms: float,
            duration_ms: float) -> Schedule:
    """The schedule with a freeze-frame hold inserted at ``at_ms``.

    Events beginning at or after the freeze point shift later by the
    hold; events spanning the point are extended (their display persists
    through the hold — the freeze-frame video operation the paper's
    news example needs).
    """
    from repro.timing.schedule import ScheduledEvent
    shifted_events = []
    # Built in cached canonical order: the hold shifts every event at or
    # after the freeze point by the same amount, which cannot reorder
    # begin times, so the copy pre-seeds its order cache.
    for event in schedule.ordered_events():
        begin, end = event.begin_ms, event.end_ms
        if begin >= at_ms:
            begin += duration_ms
            end += duration_ms
        elif end > at_ms:
            end += duration_ms
        shifted_events.append(ScheduledEvent(event.event, begin, end))
    shifted_times = {}
    for var, t in schedule.times_ms.items():
        shifted_times[var] = t + duration_ms if t >= at_ms else t
    frozen = Schedule(
        compiled=schedule.compiled,
        times_ms=shifted_times,
        events=shifted_events,
        dropped_constraints=list(schedule.dropped_constraints),
        solver_iterations=schedule.solver_iterations,
    )
    frozen._ordered = tuple(shifted_events)
    return frozen
