"""Compiled adaptation programs: filtering lowered for the serving path.

A :class:`~repro.pipeline.filters.FilterPlan` is authored-side output:
a list of declarative action objects, re-derived per plan call.  The
serving engine admits many sessions of the same document against the
same environment, and paying plan derivation, descriptor adaptation and
playback-program compilation per *session* is the object-at-a-time cost
this PR removes — the same lowering the schedule (PR 4) and replay
(PR 3) paths already received.

:func:`compile_adaptation` lowers a plan once into an
:class:`AdaptationProgram`: interned descriptor slots, a parallel
(slot, action) op table deduplicated per descriptor, and precomputed
adapted descriptors.  :func:`adapted_program_for` composes it with the shared
base :class:`~repro.pipeline.program.PlaybackProgram` into an
environment-specialized program, cached in the
:class:`~repro.pipeline.program.ProgramCache` under (schedule identity,
revision, environment fingerprint).  Per-descriptor filtering never
changes event timing — durations are authored attributes, untouched by
scale/colour/rate/channel mappings — so the specialized program shares
every compiled array with the base, and adapted playback is pinned
bit-identical to interpretively filtering the document and playing the
result (``tests/test_adaptation.py``).

:meth:`AdaptationProgram.adapt_document` is that interpretive
reference: a copied document whose descriptors carry the post-filter
attributes (the same :func:`~repro.pipeline.filters.adapt_attributes`
update the payload executor applies), which re-negotiates as
``playable`` — the honesty contract behind ``playable-with-filtering``
verdicts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import Any

from repro.core.descriptors import DataDescriptor
from repro.core.document import CmifDocument, CompiledDocument
from repro.core.errors import DeviceConstraintError, MediaError
from repro.core.nodes import NodeKind
from repro.core.tree import iter_preorder
from repro.pipeline.filters import (ConstraintFilter, FilterAction,
                                    FilterKind, FilterPlan,
                                    adapt_attributes, apply_action)
from repro.pipeline.program import (PlaybackProgram, ProgramCache,
                                    compile_program)
from repro.timing.schedule import Schedule
from repro.transport.environments import SystemEnvironment
from repro.transport.requirements import DocumentRequirements


@dataclass(frozen=True)
class AdaptationProgram:
    """One document's filtering for one environment, in compiled form.

    The op table is two parallel tuples: ``op_slot[i]`` is the interned
    descriptor slot the ``i``-th op applies to, ``actions[i]`` the
    deduplicated filter action itself; ``originals``/``overrides`` hold
    the per-slot descriptor before and after adaptation, precomputed at
    compile time so per-session work is a tuple lookup.
    """

    environment: str
    fingerprint: tuple
    revision: int
    descriptor_ids: tuple[str, ...]
    op_slot: tuple[int, ...]
    actions: tuple[FilterAction, ...]
    originals: tuple[DataDescriptor, ...]
    overrides: tuple[DataDescriptor, ...]
    dropped_channels: tuple[str, ...]
    projected_bandwidth_bps: int

    @property
    def identity(self) -> bool:
        """True when the environment needs no adaptation at all."""
        return not self.op_slot and not self.dropped_channels

    def slot_of(self, descriptor_id: str) -> int | None:
        try:
            return self.descriptor_ids.index(descriptor_id)
        except ValueError:
            return None

    def override_for(self, descriptor_id: str) -> DataDescriptor | None:
        """The adapted descriptor, or None when unchanged."""
        slot = self.slot_of(descriptor_id)
        return None if slot is None else self.overrides[slot]

    def actions_for(self, descriptor_id: str) -> tuple[FilterAction, ...]:
        """The compiled op sequence of one descriptor, as actions."""
        slot = self.slot_of(descriptor_id)
        if slot is None:
            return ()
        return tuple(action for index, action
                     in zip(self.op_slot, self.actions)
                     if index == slot)

    def transform_payload(self, descriptor_id: str, payload: Any
                          ) -> tuple[Any, DataDescriptor]:
        """Run one descriptor's op chain on concrete payload data.

        Returns the transformed payload and the adapted descriptor.
        Only descriptors with compiled ops have slots here; asking for
        any other id raises :class:`~repro.core.errors.MediaError`
        (the program does not hold unadapted descriptors).
        """
        slot = self.slot_of(descriptor_id)
        if slot is None:
            raise MediaError(
                f"descriptor {descriptor_id!r} has no ops in the "
                f"{self.environment!r} adaptation program")
        descriptor = self.originals[slot]
        for index, action in zip(self.op_slot, self.actions):
            if index == slot:
                payload, descriptor = apply_action(action, payload,
                                                   descriptor)
        return payload, descriptor

    def adapt_document(self, document: CmifDocument) -> CmifDocument:
        """The interpretive reference: a copy with adapted descriptors.

        This is "filtering then playing"'s first half — the compiled
        serving path must stay bit-identical to playing this document.
        Channel drops change document structure and timing; they only
        arise for ``unplayable`` verdicts, which the serving engine
        rejects instead of adapting, so adapting such a plan is an
        error rather than a silent partial result.
        """
        if self.dropped_channels:
            raise DeviceConstraintError(
                f"cannot adapt for {self.environment!r}: channels "
                f"{sorted(self.dropped_channels)} carry unsupported "
                f"media (the document is unplayable there, not "
                f"filterable)")
        if self.identity:
            return document
        clone = copy.deepcopy(document)
        styles = document.styles_or_none()
        for node in iter_preorder(document.root):
            if node.kind is not NodeKind.EXT:
                continue
            file_id = node.effective("file", styles=styles)
            if file_id is None:
                continue
            descriptor = document.resolve_descriptor(file_id)
            if descriptor is None:
                continue
            override = self.override_for(descriptor.descriptor_id)
            if override is not None:
                clone.register_descriptor(file_id, override)
        return clone


def compile_adaptation(plan: FilterPlan, compiled: CompiledDocument,
                       environment: SystemEnvironment
                       ) -> AdaptationProgram:
    """Lower a filter plan into an :class:`AdaptationProgram`.

    Actions are grouped per descriptor (a descriptor shared by several
    channels gets one op chain — applying identical transforms twice
    would falsify the attributes) and the adapted descriptors are
    precomputed through :func:`~repro.pipeline.filters.adapt_attributes`.
    """
    by_id: dict[str, DataDescriptor] = {}
    for event in compiled.events:
        if event.descriptor is not None:
            by_id.setdefault(event.descriptor.descriptor_id,
                             event.descriptor)
    slots: dict[str, int] = {}
    seen_kinds: set[tuple[str, FilterKind]] = set()
    op_slot: list[int] = []
    actions: list[FilterAction] = []
    for action in plan.actions:
        if action.kind is FilterKind.DROP_CHANNEL \
                or action.descriptor_id is None:
            continue
        dedup = (action.descriptor_id, action.kind)
        if dedup in seen_kinds:
            continue
        seen_kinds.add(dedup)
        op_slot.append(slots.setdefault(action.descriptor_id,
                                        len(slots)))
        actions.append(action)
    originals: list[DataDescriptor] = []
    overrides: list[DataDescriptor] = []
    for descriptor_id in slots:
        descriptor = by_id[descriptor_id]
        attributes = dict(descriptor.attributes)
        for slot, action in zip(op_slot, actions):
            if slot == slots[descriptor_id]:
                attributes = adapt_attributes(action, attributes)
        originals.append(descriptor)
        overrides.append(DataDescriptor(
            descriptor_id=descriptor.descriptor_id,
            medium=descriptor.medium,
            block_id=descriptor.block_id,
            attributes=attributes))
    projected = (plan.environment_plan.projected_bandwidth_bps
                 if plan.environment_plan is not None else 0)
    return AdaptationProgram(
        environment=environment.name,
        fingerprint=environment.fingerprint(),
        revision=compiled.document.revision,
        descriptor_ids=tuple(slots),
        op_slot=tuple(op_slot),
        actions=tuple(actions),
        originals=tuple(originals),
        overrides=tuple(overrides),
        dropped_channels=tuple(sorted(plan.dropped_channels)),
        projected_bandwidth_bps=projected)


def adapt_document(document: CmifDocument, plan: FilterPlan,
                   environment: SystemEnvironment) -> CmifDocument:
    """Interpretively apply a filter plan to a whole document.

    Convenience over :func:`compile_adaptation` +
    :meth:`AdaptationProgram.adapt_document` — the reference path the
    equivalence tests and the serving bench's naive baseline use.
    """
    return compile_adaptation(plan, document.compile(),
                              environment).adapt_document(document)


def adapted_navigation_for(schedule: Schedule,
                           environment: SystemEnvironment | None = None,
                           *, program_cache: ProgramCache | None = None):
    """The navigation program serving an environment-adapted session.

    Adaptation is timing-invariant: per-descriptor filtering rewrites
    attributes, never event begin/end times, and links derive from the
    schedule's solved times alone — so every environment of a document
    shares one compiled
    :class:`~repro.pipeline.navprogram.NavigationProgram`, exactly as
    specialized playback programs share the base program's arrays.
    This function makes that sharing explicit at the engine's admission
    site (and keeps a seam should an adaptation kind ever move times).
    """
    from repro.pipeline.navprogram import navigation_for
    return navigation_for(schedule, program_cache=program_cache)


def adaptation_for(schedule: Schedule, environment: SystemEnvironment,
                   *, requirements: DocumentRequirements | None = None
                   ) -> AdaptationProgram:
    """Plan and lower one environment's adaptation of a schedule.

    The plan-derivation + compile composition ``adapted_program_for``
    performs on a miss, without the program-cache plumbing — the piece
    delta-lowering's structural fallback re-runs per *cached*
    environment after an un-patchable edit.  ``requirements`` is only a
    profile-derivation speed cache; with or without it the output is
    bit-identical.
    """
    plan = ConstraintFilter(environment).plan(
        schedule.compiled, requirements=requirements)
    return compile_adaptation(plan, schedule.compiled, environment)


def adapted_program_for(schedule: Schedule,
                        environment: SystemEnvironment, *,
                        program_cache: ProgramCache | None = None,
                        requirements: DocumentRequirements | None = None,
                        plan: FilterPlan | None = None
                        ) -> PlaybackProgram:
    """The environment-specialized playback program of a schedule.

    On a cache hit this is one dictionary probe.  On a miss: the shared
    base program is compiled (or fetched) under the environment-free
    key, the filter plan is derived (reusing ``requirements`` when the
    caller holds a cached profile), lowered, and composed — then cached
    under (schedule identity, revision, environment fingerprint).  A
    plan with no ops composes to the base program itself, so playable
    documents cost nothing extra per environment.
    """
    if program_cache is not None:
        cached = program_cache.get(schedule, environment=environment)
        if cached is not None:
            return cached
    base = compile_program(schedule, cache=program_cache)
    if plan is None:
        adaptation = adaptation_for(schedule, environment,
                                    requirements=requirements)
    else:
        adaptation = compile_adaptation(plan, schedule.compiled,
                                        environment)
    program = base if adaptation.identity \
        else base.specialized(adaptation)
    if program_cache is not None:
        program_cache.put(schedule, program, environment=environment)
    return program
