"""Hyper-navigation over conditional arcs (paper section 3.2).

"The entire question of hyper access to data is intimately related to
the concepts of document presentation synchronization. ... we suspect
that this general problem can be addressed via the definition of
conditional synchronization arcs that point to events on separate
channels" — the paper leaves the idea as future work; this module
implements it.  :class:`NavigationSession` is the interpretive
reference; :mod:`repro.pipeline.navprogram` lowers it into precompiled
link/invalidation tables for the serving path, pinned bit-identical to
this implementation.

A :class:`ConditionalArc` carries a named condition.  During an
interactive session (:class:`NavigationSession`), firing a condition at
some presentation time *jumps* the reader: the arc's destination anchor
becomes the new playback position, computed through the ordinary offset
mechanism.  Jump validity reuses the class-3 navigation analysis: after
a jump, relative arcs whose sources never executed are reported
invalid, because "the source of the arc must execute in order for a
synchronization condition to be true".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.errors import NavigationError
from repro.core.paths import node_path, resolve_path
from repro.core.syncarc import Anchor, ConditionalArc
from repro.core.tree import iter_preorder
from repro.timing.conflicts import NAVIGATION, ConflictReport
from repro.timing.schedule import Schedule


@dataclass(frozen=True)
class Link:
    """One followable hyper-link: a conditional arc with solved times."""

    condition: str
    owner_path: str
    source_path: str
    target_path: str
    active_from_ms: float
    active_until_ms: float
    target_time_ms: float

    def active_at(self, time_ms: float) -> bool:
        """True while the link's source event is on screen."""
        return self.active_from_ms <= time_ms < self.active_until_ms

    def __str__(self) -> str:
        return (f"[{self.condition}] {self.source_path} -> "
                f"{self.target_path} @ {self.target_time_ms:g}ms")


@dataclass
class Jump:
    """One navigation step taken during a session."""

    condition: str
    from_ms: float
    to_ms: float
    invalidated: list[ConflictReport] = field(default_factory=list)


def segments_cover(segments: list[tuple[float, float]],
                   begin_ms: float, end_ms: float) -> bool:
    """True when ``[begin_ms, end_ms]`` lies inside the segment union.

    Watched segments may overlap (a backward jump re-watches part of an
    earlier pass), so coverage must be judged against *merged* runs: an
    interval counts as watched when one contiguous union of segments
    spans it, even if no single segment does.  Both the interpretive
    session and the compiled one judge arc validity through this
    helper, so their reports cannot drift.
    """
    run_start = 0.0
    covered_until: float | None = None
    for start, end in sorted(segments):
        if covered_until is None or start > covered_until + 1e-9:
            run_start, covered_until = start, end
        elif end > covered_until:
            covered_until = end
        if begin_ms >= run_start - 1e-9 and end_ms <= covered_until + 1e-9:
            return True
    return False


def collect_links(schedule: Schedule) -> list[Link]:
    """Extract every conditional arc of a scheduled document as a link.

    A link is *active* while its source node is being presented — the
    reader can only follow what is on screen, the natural hypermedia
    rule.  The jump target is the destination anchor time plus the
    arc's offset.
    """
    document = schedule.compiled.document
    links: list[Link] = []
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            if not isinstance(arc, ConditionalArc):
                continue
            source = resolve_path(node, arc.source)
            target = resolve_path(node, arc.destination)
            source_path = node_path(source)
            target_path = node_path(target)
            begin = schedule.node_begin_ms(source_path)
            end = schedule.node_end_ms(source_path)
            anchor_time = (schedule.node_begin_ms(target_path)
                           if arc.dst_anchor is Anchor.BEGIN
                           else schedule.node_end_ms(target_path))
            offset_ms = document.timebase.to_ms(arc.offset)
            links.append(Link(
                condition=arc.condition,
                owner_path=node_path(node),
                source_path=source_path,
                target_path=target_path,
                active_from_ms=begin,
                active_until_ms=end,
                target_time_ms=anchor_time + offset_ms,
            ))
    return links


class NavigationSession:
    """An interactive reading of one scheduled document.

    Tracks the current presentation position; :meth:`follow` fires a
    condition, jumping to the linked target and recording which relative
    arcs the jump invalidated.  The document itself is never reordered —
    the paper's rule that "re-ordering requires re-editing the document"
    holds; navigation only moves the read position.
    """

    def __init__(self, schedule: Schedule) -> None:
        self.schedule = schedule
        self.links = collect_links(schedule)
        self.position_ms = 0.0
        self.history: list[Jump] = []
        #: Closed intervals of presentation time the reader has actually
        #: watched; jumps leave gaps.  Arc validity is judged against
        #: these, not against a linear-play assumption.
        self._played: list[tuple[float, float]] = []
        self._segment_start = 0.0

    def advance_to(self, time_ms: float) -> None:
        """Linear progress (the presentation playing forward)."""
        if time_ms < self.position_ms:
            raise NavigationError(
                f"advance_to({time_ms}) moves backwards; use follow() or "
                f"rewind()")
        self.position_ms = time_ms

    def rewind(self) -> None:
        """Back to the start (fast-reverse to zero is always valid)."""
        self._played.append((self._segment_start, self.position_ms))
        self.position_ms = 0.0
        self._segment_start = 0.0

    def active_links(self) -> list[Link]:
        """Links the reader can follow right now."""
        return [link for link in self.links
                if link.active_at(self.position_ms)]

    def conditions_available(self) -> list[str]:
        """The distinct condition names currently followable."""
        return sorted({link.condition for link in self.active_links()})

    def follow(self, condition: str) -> Jump:
        """Fire ``condition``: jump to the linked target.

        Raises :class:`NavigationError` when no active link carries the
        condition (the paper's arcs are only valid while their source
        executes).
        """
        for link in self.active_links():
            if link.condition == condition:
                jump = Jump(
                    condition=condition,
                    from_ms=self.position_ms,
                    to_ms=link.target_time_ms,
                )
                self._played.append((self._segment_start,
                                     self.position_ms))
                self.position_ms = link.target_time_ms
                self._segment_start = link.target_time_ms
                jump.invalidated = self._session_invalid_arcs()
                self.history.append(jump)
                return jump
        raise NavigationError(
            f"no active link for condition {condition!r} at "
            f"{self.position_ms:g}ms (active: "
            f"{self.conditions_available()})")

    def _was_played(self, begin_ms: float, end_ms: float) -> bool:
        """True when [begin_ms, end_ms] lies inside watched intervals.

        The current open segment counts as watched up to the present
        position.
        """
        return segments_cover(
            self._played + [(self._segment_start, self.position_ms)],
            begin_ms, end_ms)

    def _session_invalid_arcs(self) -> list[ConflictReport]:
        """Class-3 analysis against the session's watched intervals.

        An ordinary (non-conditional) arc is invalid when its source was
        never fully presented in this session while its destination is
        still ahead of the current position.  Conditional arcs are
        runtime links, not synchronization constraints, and are skipped.
        """
        reports: list[ConflictReport] = []
        document = self.schedule.compiled.document
        for node in iter_preorder(document.root):
            for arc in node.arcs:
                if isinstance(arc, ConditionalArc):
                    continue
                source = resolve_path(node, arc.source)
                destination = resolve_path(node, arc.destination)
                source_path = node_path(source)
                destination_path = node_path(destination)
                try:
                    src_begin = self.schedule.node_begin_ms(source_path)
                    src_end = self.schedule.node_end_ms(source_path)
                    dst_begin = self.schedule.node_begin_ms(
                        destination_path)
                except Exception:
                    continue
                if dst_begin < self.position_ms - 1e-9:
                    continue
                if self._was_played(src_begin, src_end):
                    continue
                reports.append(ConflictReport(
                    NAVIGATION, node_path(node),
                    f"in this session the source of {arc.describe()} "
                    f"was never presented; all incoming synchronization "
                    f"arcs are considered invalid"))
        return reports

    def on_screen(self) -> list[str]:
        """Node paths of the events presented at the current position."""
        return [event.event.node_path
                for event in self.schedule.events_at(self.position_ms)]
