"""Pipeline stage 5a: document viewing tools (paper section 2, figures
3, 4 and 5).

"These tools present a document (based on the document structure map,
the presentation map, and the local filter map) and provide a means for
a reader to 'view' or (possibly) edit a document."  The renderings here
are text-mode, which keeps them testable and matches the document
structure's role as "an internal table-of-contents function":

* :func:`render_tree` — figure 5a, the conventional node-and-branch tree;
* :func:`render_embedded` — figure 5b, the nested-box (embedded) form;
* :func:`render_timeline` — figure 3 / figure 10, channels as columns
  with time flowing downward and events as boxes;
* :func:`render_screen` — figure 4a, the composite screen at one instant,
  using the presentation map's regions;
* :func:`render_arc_table` — figure 9, the tabular arc form.
"""

from __future__ import annotations

from repro.core.document import CmifDocument
from repro.core.nodes import ImmNode, Node
from repro.pipeline.presentation import PresentationMap
from repro.timing.constraints import arc_table
from repro.timing.schedule import Schedule, ScheduleCache, schedule_for


def _node_caption(node: Node) -> str:
    caption = node.kind.value
    if node.name:
        caption += f" {node.name}"
    channel = node.attributes.get("channel")
    if channel:
        caption += f" @{channel}"
    if node.arcs:
        caption += f" [{len(node.arcs)} arc(s)]"
    if isinstance(node, ImmNode) and node.data:
        text = str(node.data)
        snippet = text[:24] + ("..." if len(text) > 24 else "")
        caption += f' "{snippet}"'
    return caption


def render_tree(document: CmifDocument) -> str:
    """Figure 5a: the conventional tree with branch characters."""
    lines: list[str] = []

    def visit(node: Node, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_node_caption(node))
            child_prefix = ""
        else:
            connector = "`-- " if is_last else "|-- "
            lines.append(prefix + connector + _node_caption(node))
            child_prefix = prefix + ("    " if is_last else "|   ")
        children = node.children
        for index, child in enumerate(children):
            visit(child, child_prefix, index == len(children) - 1, False)

    visit(document.root, "", True, True)
    return "\n".join(lines)


def render_embedded(document: CmifDocument, width: int = 72) -> str:
    """Figure 5b: the embedded (nested box) form of the same tree."""
    lines: list[str] = []

    def visit(node: Node, depth: int) -> None:
        indent = "  " * depth
        inner = width - len(indent) - 2
        caption = _node_caption(node)[:inner - 2]
        lines.append(f"{indent}+{'-' * inner}+")
        lines.append(f"{indent}| {caption:<{inner - 2}} |")
        for child in node.children:
            visit(child, depth + 1)
        if node.children:
            lines.append(f"{indent}+{'-' * inner}+")

    visit(document.root, 0)
    return "\n".join(lines)


def render_timeline(schedule: Schedule, *, slot_ms: float = 1000.0,
                    column_width: int = 14) -> str:
    """Figure 3 / figure 10: channel columns, time rows, event boxes.

    Each row covers ``slot_ms`` of presentation time; a cell shows the
    event active on that channel during the slot, with ``+--`` marking
    the slot in which the event begins.
    """
    lanes = schedule.by_channel()
    channels = list(lanes)
    total = schedule.total_duration_ms
    slots = max(1, int(total / slot_ms + 0.999))
    header = "time".ljust(10) + "".join(
        name.ljust(column_width) for name in channels)
    lines = [header, "-" * len(header)]
    for slot in range(slots):
        start = slot * slot_ms
        row = [f"{start / 1000.0:7.1f}s  "]
        for channel in channels:
            cell = ""
            for event in lanes[channel]:
                if event.begin_ms <= start + 1e-6 < event.end_ms:
                    name = event.event.node_path.rsplit("/", 1)[-1]
                    starts_here = start <= event.begin_ms < start + slot_ms
                    cell = ("+" if starts_here else "|") + name
                    break
                if start < event.begin_ms < start + slot_ms:
                    name = event.event.node_path.rsplit("/", 1)[-1]
                    cell = "+" + name
                    break
            row.append(cell[:column_width - 1].ljust(column_width))
        lines.append("".join(row))
    return "\n".join(lines)


def render_screen(schedule: Schedule, presentation: PresentationMap,
                  at_ms: float, *, columns: int = 60, rows: int = 18
                  ) -> str:
    """Figure 4a: the composite screen at one instant.

    Visual events active at ``at_ms`` paint their channel's first letter
    into the character cells their region covers (higher z on top);
    active audio events are listed beneath, the way figure 4a draws the
    sound as coming from the side of the display.
    """
    grid = [[" "] * columns for _ in range(rows)]
    active = schedule.events_at(at_ms)
    painted = sorted(
        (event for event in active
         if event.event.channel in presentation.regions),
        key=lambda event: presentation.regions[event.event.channel].z_order)
    for event in painted:
        region = presentation.regions[event.event.channel]
        rect = region.rect
        x0 = rect.x * columns // 1000
        y0 = rect.y * rows // 1000
        x1 = max(x0 + 1, (rect.x + rect.width) * columns // 1000)
        y1 = max(y0 + 1, (rect.y + rect.height) * rows // 1000)
        letter = event.event.channel[0].upper()
        for y in range(y0, min(y1, rows)):
            for x in range(x0, min(x1, columns)):
                grid[y][x] = letter
    lines = ["+" + "-" * columns + "+"]
    lines.extend("|" + "".join(row) + "|" for row in grid)
    lines.append("+" + "-" * columns + "+")
    aural = [event for event in active
             if event.event.channel in presentation.speakers]
    for event in aural:
        speaker = presentation.speakers[event.event.channel].speaker
        lines.append(f"  (( speaker {speaker}: "
                     f"{event.event.node_path} ))")
    legend = ", ".join(
        f"{name[0].upper()}={name}" for name in sorted(presentation.regions))
    lines.append(f"  legend: {legend}")
    return "\n".join(lines)


def render_arc_table(schedule: Schedule, *, explicit_only: bool = True
                     ) -> str:
    """Figure 9: every synchronization arc in tabular form."""
    rows = arc_table(schedule.compiled)
    if explicit_only:
        rows = [row for row in rows if row["origin"] == "explicit-arc"]
    headers = ["type", "source", "offset", "destination", "min_delay",
               "max_delay"]
    widths = {h: max(len(h), *(len(row[h]) for row in rows)) if rows
              else len(h) for h in headers}
    lines = ["  ".join(h.ljust(widths[h]) for h in headers)]
    lines.append("  ".join("-" * widths[h] for h in headers))
    for row in rows:
        lines.append("  ".join(row[h].ljust(widths[h]) for h in headers))
    return "\n".join(lines)


def render_sweep(cells) -> str:
    """A batch sweep's grid as a table (one row per cell).

    Takes the :class:`~repro.pipeline.program.SweepCell` list a
    :meth:`~repro.pipeline.program.BatchPlayer.sweep` returns and
    renders environment × rate × seek against played events, worst
    skew and arc violations — the serving-side counterpart of the
    figure-3 timeline view.
    """
    header = (f"{'environment':<16} {'rate':>5} {'seek':>7} "
              f"{'runs':>5} {'events':>7} {'skew':>9} "
              f"{'must':>5} {'may':>5}")
    lines = [header, "-" * len(header)]
    for cell in cells:
        lines.append(
            f"{cell.environment:<16} {cell.rate:>5g} "
            f"{cell.seek_to_ms / 1000.0:>6.1f}s "
            f"{len(cell.reports):>5} {cell.events_played:>7} "
            f"{cell.worst_skew_ms:>7.1f}ms "
            f"{cell.must_violations:>5} {cell.may_violations:>5}")
    return "\n".join(lines)


def render_summary(document: CmifDocument, schedule: Schedule | None = None
                   ) -> str:
    """The table-of-contents view: stats, channels, optional timing."""
    stats = document.stats()
    lines = [
        f"document: {document.root.name or '(unnamed)'}",
        f"  nodes: {stats.total_nodes} ({stats.seq_nodes} seq, "
        f"{stats.par_nodes} par, {stats.ext_nodes} ext, "
        f"{stats.imm_nodes} imm)",
        f"  depth: {stats.max_depth}, attributes: "
        f"{stats.attribute_count}, explicit arcs: {stats.arc_count}",
        f"  channels: " + ", ".join(
            f"{c.name}({c.medium.value})" for c in document.channels),
    ]
    if schedule is not None:
        lines.append(
            f"  scheduled span: {schedule.total_duration_ms / 1000.0:.1f}s "
            f"over {len(schedule.events)} events")
        utilization = schedule.channel_utilization()
        lines.append("  utilization: " + ", ".join(
            f"{name} {fraction * 100.0:.0f}%"
            for name, fraction in sorted(utilization.items())))
    return "\n".join(lines)


def render_authoring_view(document: CmifDocument, *,
                          cache: ScheduleCache | None = None,
                          slot_ms: float = 2000.0) -> str:
    """The edit-loop refresh: summary + timeline of the current revision.

    This is what an authoring tool re-renders after every edit.  With a
    ``cache`` (normally the one the incremental scheduler publishes to),
    an unchanged revision costs a lookup instead of a solve.
    """
    schedule = schedule_for(document, cache=cache)
    parts = [render_summary(document, schedule), "",
             render_timeline(schedule, slot_ms=slot_ms)]
    if schedule.dropped_constraints:
        parts.append("")
        parts.append(f"relaxed {len(schedule.dropped_constraints)} may "
                     f"constraint(s) to make the document schedulable:")
        parts.extend(f"  - {constraint.describe()}"
                     for constraint in schedule.dropped_constraints)
    return "\n".join(parts)
