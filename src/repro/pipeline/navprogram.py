"""Compiled navigation programs: hyper-navigation on the serving path.

The interpretive :class:`~repro.pipeline.navigation.NavigationSession`
pays document-shaped costs per session and per jump: link collection is
a full tree walk with per-arc path resolution and schedule lookups, and
every ``follow()`` re-walks the tree to decide which ordinary arcs the
jump invalidated.  All of that is invariant per (schedule, revision) —
only the reader's watched intervals change between sessions.

:func:`compile_navigation` lowers a schedule once into a
:class:`NavigationProgram`:

* the resolved link table (the exact
  :class:`~repro.pipeline.navigation.Link` rows the interpretive
  session would collect, in the same preorder), plus parallel activity
  arrays for the follow loop;
* an invalidation table: one :class:`ArcGuard` row per ordinary arc
  with its solved source/destination times and a prebuilt class-3
  :class:`~repro.timing.conflicts.ConflictReport`, so a jump's
  invalidation pass is float compares over precompiled rows;
* the sorted set of distinct jump destinations, which
  :meth:`NavigationProgram.warm` uses to prime a
  :class:`~repro.pipeline.program.BatchPlayer`'s per-seek run plans —
  the per-destination playback-program fragments that make following a
  link an O(1) program swap + array seek.

A broken conditional arc defers: the interpretive reference raises
:class:`~repro.core.errors.PathError` (or a scheduling conflict) when a
session is *constructed*, so the compiled program records the error and
:class:`CompiledNavigationSession` raises the same one at construction —
never earlier, even when the program was compiled ahead of time at
admission or ingest.

Programs cache in the shared
:class:`~repro.pipeline.program.ProgramCache` under (schedule identity,
revision, tag), so a document edit invalidates navigation together with
every other compiled level.  Sessions themselves stay cheap per-reader
objects over the shared tables, pinned bit-identical to the
interpretive reference by ``tests/test_navprogram.py``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.core.errors import NavigationError, PathError, \
    SchedulingConflict
from repro.core.paths import node_path, resolve_path
from repro.core.syncarc import ConditionalArc
from repro.core.tree import iter_preorder
from repro.pipeline.navigation import (Jump, Link, collect_links,
                                       segments_cover)
from repro.pipeline.program import BatchPlayer, ProgramCache
from repro.timing.conflicts import NAVIGATION, ConflictReport
from repro.timing.schedule import Schedule

#: The :meth:`ProgramCache.get_derived` tag navigation programs live
#: under — one per (schedule identity, document revision).
NAVIGATION_TAG = "navigation"


@dataclass(frozen=True)
class ArcGuard:
    """One ordinary arc's precompiled session-invalidation row.

    ``report`` is the exact :class:`ConflictReport` the interpretive
    session would build when the arc's source was never presented;
    sharing one frozen instance across sessions is safe and keeps the
    per-jump loop allocation-free.
    """

    src_begin_ms: float
    src_end_ms: float
    dst_begin_ms: float
    report: ConflictReport


@dataclass(frozen=True)
class Choice:
    """One scripted choice-point: pause at ``at_ms``, fire ``condition``."""

    at_ms: float
    condition: str


class NavigationProgram:
    """One schedule's hyper-navigation, lowered to flat tables."""

    __slots__ = ("schedule", "revision", "links", "active_from",
                 "active_until", "conditions", "targets", "guards",
                 "destinations", "deferred_error")

    def __init__(self, schedule: Schedule, revision: int,
                 links: tuple[Link, ...], guards: tuple[ArcGuard, ...],
                 deferred_error: Exception | None) -> None:
        self.schedule = schedule
        self.revision = revision
        self.links = links
        self.active_from = [link.active_from_ms for link in links]
        self.active_until = [link.active_until_ms for link in links]
        self.conditions = [link.condition for link in links]
        self.targets = [link.target_time_ms for link in links]
        self.guards = guards
        self.destinations = tuple(sorted({link.target_time_ms
                                          for link in links}))
        self.deferred_error = deferred_error

    def session(self) -> "CompiledNavigationSession":
        """A fresh reader session over the shared tables."""
        return CompiledNavigationSession(self)

    def warm(self, player: BatchPlayer, *, rate: float = 1.0) -> int:
        """Prime ``player`` with every link destination's seek state.

        One cached :class:`~repro.pipeline.program.RunPlan` plus class-3
        analysis per distinct jump target — the per-destination playback
        fragments.  Returns how many destinations were warmed.
        """
        for target in self.destinations:
            player.prime_seek(target, rate=rate)
        return len(self.destinations)

    def describe(self) -> str:
        return (f"navigation program: {len(self.links)} link(s), "
                f"{len(self.guards)} guarded arc(s), "
                f"{len(self.destinations)} destination(s)")


def compile_navigation(schedule: Schedule) -> NavigationProgram:
    """Lower a schedule's conditional arcs into a navigation program.

    Pays the link-collection tree walk and the invalidation walk once
    per (schedule, revision); every session after that is table reads.
    """
    deferred: Exception | None = None
    try:
        links = tuple(collect_links(schedule))
    except (PathError, SchedulingConflict) as exc:
        # The interpretive session raises when constructed; defer so
        # compiled sessions fail at the same moment with the same error.
        links = ()
        deferred = exc

    guards: list[ArcGuard] = []
    if deferred is None:
        document = schedule.compiled.document
        for node in iter_preorder(document.root):
            for arc in node.arcs:
                if isinstance(arc, ConditionalArc):
                    continue
                source = resolve_path(node, arc.source)
                destination = resolve_path(node, arc.destination)
                source_path = node_path(source)
                destination_path = node_path(destination)
                try:
                    src_begin = schedule.node_begin_ms(source_path)
                    src_end = schedule.node_end_ms(source_path)
                    dst_begin = schedule.node_begin_ms(destination_path)
                except Exception:
                    # The interpretive walk skips arcs without solved
                    # times on every jump; that choice only depends on
                    # the schedule, so it compiles away entirely.
                    continue
                guards.append(ArcGuard(
                    src_begin_ms=src_begin,
                    src_end_ms=src_end,
                    dst_begin_ms=dst_begin,
                    report=ConflictReport(
                        NAVIGATION, node_path(node),
                        f"in this session the source of {arc.describe()} "
                        f"was never presented; all incoming "
                        f"synchronization arcs are considered invalid")))

    return NavigationProgram(
        schedule=schedule,
        revision=schedule.compiled.document.revision,
        links=links, guards=tuple(guards), deferred_error=deferred)


def recompile_into(program: NavigationProgram,
                   schedule: Schedule) -> NavigationProgram:
    """Refresh a navigation program in place from an edited schedule.

    Live sessions (and the serving engine's player cache) hold the
    program object itself; delta-lowering an edit must update what they
    see without swapping objects.  Compiles fresh tables and moves them
    onto the existing instance — bit-identical to
    :func:`compile_navigation` by construction.
    """
    fresh = compile_navigation(schedule)
    for slot in NavigationProgram.__slots__:
        setattr(program, slot, getattr(fresh, slot))
    return program


def navigation_for(schedule: Schedule, *,
                   program_cache: ProgramCache | None = None
                   ) -> NavigationProgram:
    """The schedule's navigation program, compiled at most once.

    Cached under (schedule identity, document revision,
    :data:`NAVIGATION_TAG`) in the shared program cache, so edits
    invalidate it exactly when they invalidate the playback program.
    """
    if program_cache is not None:
        cached = program_cache.get_derived(schedule, NAVIGATION_TAG)
        if cached is not None:
            return cached
    program = compile_navigation(schedule)
    if program_cache is not None:
        program_cache.put_derived(schedule, NAVIGATION_TAG, program)
    return program


class CompiledNavigationSession:
    """An interactive reading over precompiled navigation tables.

    API- and bit-identical to the interpretive
    :class:`~repro.pipeline.navigation.NavigationSession`: same
    :class:`Link` rows in the same order, same
    :class:`~repro.pipeline.navigation.Jump` history, same invalidation
    reports, same errors at the same moments — only the per-session and
    per-jump costs differ.
    """

    def __init__(self, program: NavigationProgram) -> None:
        if program.deferred_error is not None:
            raise program.deferred_error
        self.program = program
        self.schedule = program.schedule
        self.links = list(program.links)
        self.position_ms = 0.0
        self.history: list[Jump] = []
        self._played: list[tuple[float, float]] = []
        self._segment_start = 0.0

    def advance_to(self, time_ms: float) -> None:
        """Linear progress (the presentation playing forward)."""
        if time_ms < self.position_ms:
            raise NavigationError(
                f"advance_to({time_ms}) moves backwards; use follow() or "
                f"rewind()")
        self.position_ms = time_ms

    def rewind(self) -> None:
        """Back to the start (fast-reverse to zero is always valid)."""
        self._played.append((self._segment_start, self.position_ms))
        self.position_ms = 0.0
        self._segment_start = 0.0

    def active_links(self) -> list[Link]:
        """Links the reader can follow right now."""
        position = self.position_ms
        program = self.program
        active_from = program.active_from
        active_until = program.active_until
        links = self.links
        return [links[index] for index in range(len(links))
                if active_from[index] <= position < active_until[index]]

    def conditions_available(self) -> list[str]:
        """The distinct condition names currently followable."""
        position = self.position_ms
        program = self.program
        active_from = program.active_from
        active_until = program.active_until
        conditions = program.conditions
        return sorted({conditions[index]
                       for index in range(len(conditions))
                       if active_from[index] <= position
                       < active_until[index]})

    def follow(self, condition: str) -> Jump:
        """Fire ``condition``: jump to the linked target."""
        position = self.position_ms
        program = self.program
        active_from = program.active_from
        active_until = program.active_until
        conditions = program.conditions
        for index in range(len(conditions)):
            if (active_from[index] <= position < active_until[index]
                    and conditions[index] == condition):
                target = program.targets[index]
                jump = Jump(condition=condition, from_ms=position,
                            to_ms=target)
                self._played.append((self._segment_start, position))
                self.position_ms = target
                self._segment_start = target
                jump.invalidated = self._session_invalid_arcs()
                self.history.append(jump)
                return jump
        raise NavigationError(
            f"no active link for condition {condition!r} at "
            f"{self.position_ms:g}ms (active: "
            f"{self.conditions_available()})")

    def _session_invalid_arcs(self) -> list[ConflictReport]:
        """The interpretive tree walk, reduced to precompiled rows."""
        reports: list[ConflictReport] = []
        segments = self._played + [(self._segment_start,
                                    self.position_ms)]
        position = self.position_ms
        for guard in self.program.guards:
            if guard.dst_begin_ms < position - 1e-9:
                continue
            if segments_cover(segments, guard.src_begin_ms,
                              guard.src_end_ms):
                continue
            reports.append(guard.report)
        return reports

    def on_screen(self) -> list[str]:
        """Node paths of the events presented at the current position."""
        return [event.event.node_path
                for event in self.schedule.events_at(self.position_ms)]


def random_trace(schedule: Schedule, rng: random.Random, *,
                 follows: int = 2,
                 program: NavigationProgram | None = None
                 ) -> list[Choice]:
    """A seeded, self-consistent scripted choice trace for a document.

    Simulates a reader on a compiled session so every generated choice
    is followable when replayed: the pause time always falls inside the
    chosen link's activity window at or after the reader's position.
    Documents without reachable links yield shorter (possibly empty)
    traces.
    """
    if program is None:
        program = compile_navigation(schedule)
    session = program.session()
    trace: list[Choice] = []
    for _ in range(follows):
        position = session.position_ms
        candidates = [
            link for link in session.links
            if max(position, link.active_from_ms)
            < link.active_until_ms - 1e-6]
        if not candidates:
            break
        link = candidates[rng.randrange(len(candidates))]
        start = max(position, link.active_from_ms)
        at_ms = start + rng.random() * (link.active_until_ms - start) * 0.9
        session.advance_to(at_ms)
        session.follow(link.condition)
        trace.append(Choice(at_ms=at_ms, condition=link.condition))
    return trace


__all__ = ["ArcGuard", "Choice", "CompiledNavigationSession",
           "NAVIGATION_TAG", "NavigationProgram", "compile_navigation",
           "navigation_for", "random_trace", "recompile_into"]
