"""The CWI/Multimedia Pipeline (paper section 2, figure 1).

Five stages, one module each:

1. :mod:`repro.pipeline.capture` — media block capture tools;
2. :mod:`repro.pipeline.mapping` — the document structure mapping tool;
3. :mod:`repro.pipeline.presentation` — the presentation mapping tool;
4. :mod:`repro.pipeline.filters` — constraint filtering tools;
5. :mod:`repro.pipeline.viewer` / :mod:`repro.pipeline.player` —
   document viewing and reading tools.

Stages 1–2 are target-system independent, 3 bridges, 4–5 are
target-system dependent — the figure-1 split.  :func:`run_pipeline`
drives a document through all five stages and returns every
intermediate artifact, which is what the fig-1 bench measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.document import CmifDocument
from repro.pipeline.adaptation import (AdaptationProgram, adapt_document,
                                       adapted_navigation_for,
                                       adapted_program_for,
                                       compile_adaptation)
from repro.pipeline.capture import Captured, CaptureSession
from repro.pipeline.filters import (ConstraintFilter, FilterAction,
                                    FilterKind, FilterPlan,
                                    adapt_attributes, apply_action)
from repro.pipeline.mapping import StructureMapper
from repro.pipeline.navigation import (Jump, Link, NavigationSession,
                                       collect_links, segments_cover)
from repro.pipeline.navprogram import (Choice, CompiledNavigationSession,
                                       NavigationProgram,
                                       compile_navigation, navigation_for,
                                       random_trace)
from repro.pipeline.player import (ArcAudit, PlaybackReport, PlayedEvent,
                                   Player)
from repro.pipeline.presentation import (PresentationMap,
                                         PresentationMapper, Region,
                                         SpeakerAssignment, VIRTUAL_HEIGHT,
                                         VIRTUAL_WIDTH)
from repro.pipeline.program import (BatchPlayer, CompactReport,
                                    PlaybackProgram, ProgramCache,
                                    SweepCell, compile_program)
from repro.pipeline.viewer import (render_arc_table, render_embedded,
                                   render_screen, render_summary,
                                   render_sweep, render_timeline,
                                   render_tree)
from repro.timing.schedule import Schedule, schedule_document
from repro.transport.environments import SystemEnvironment, WORKSTATION


@dataclass
class PipelineRun:
    """Every artifact of one end-to-end pipeline execution."""

    document: CmifDocument
    presentation: PresentationMap
    filter_plan: FilterPlan
    schedule: Schedule
    playback: PlaybackReport


def run_pipeline(document: CmifDocument,
                 environment: SystemEnvironment = WORKSTATION, *,
                 seed: int = 0) -> PipelineRun:
    """Drive a finished document through stages 3–5.

    (Stages 1–2 produce the document itself; see
    :class:`CaptureSession` and :class:`StructureMapper`.)
    """
    compiled = document.compile()
    presentation = PresentationMapper(
        speaker_count=max(1, environment.audio_channels)).map_document(
        document)
    filter_plan = ConstraintFilter(environment).plan(compiled)
    schedule = schedule_document(compiled)
    playback = Player(environment, seed=seed).play(schedule)
    return PipelineRun(document=document, presentation=presentation,
                       filter_plan=filter_plan, schedule=schedule,
                       playback=playback)


__all__ = [
    "AdaptationProgram", "ArcAudit", "BatchPlayer", "Captured",
    "CaptureSession", "Choice", "CompactReport",
    "CompiledNavigationSession", "ConstraintFilter", "FilterAction",
    "FilterKind", "FilterPlan", "Jump", "Link", "NavigationProgram",
    "NavigationSession", "PipelineRun", "PlaybackProgram",
    "PlaybackReport", "PlayedEvent", "Player", "PresentationMap",
    "PresentationMapper", "ProgramCache", "Region", "SpeakerAssignment",
    "StructureMapper", "SweepCell", "collect_links", "VIRTUAL_HEIGHT",
    "VIRTUAL_WIDTH", "adapt_attributes", "adapt_document",
    "adapted_navigation_for", "adapted_program_for", "apply_action",
    "compile_adaptation", "compile_navigation", "compile_program",
    "navigation_for", "random_trace", "render_arc_table",
    "render_embedded", "render_screen", "render_summary", "render_sweep",
    "render_timeline", "render_tree", "run_pipeline", "segments_cover",
]
