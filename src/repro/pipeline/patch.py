"""Delta-lowering: one authoring edit becomes one program patch.

The paper's signature scenario is an author editing the Evening News
document *while it is on air*.  Before this module, that edit bumped the
document revision and invalidated the whole derived-cache pyramid —
schedule → :class:`~repro.pipeline.program.PlaybackProgram` →
:class:`~repro.pipeline.navprogram.NavigationProgram` →
:class:`~repro.pipeline.adaptation.AdaptationProgram` × N environments —
forcing O(document × environments) recompiles even though the
incremental solver already localized the *schedule* change to O(affected
events).

:class:`ProgramPatcher` closes that gap.  It takes the changed schedule
region (the ``last_changed_paths`` set the
:class:`~repro.timing.incremental.IncrementalScheduler` records per
edit) and lowers it onto the flat compiled arrays in place:

* begin/end columns — one write per moved event, at the slot the
  event's node path names;
* a canonical-order guard — only the patched slots' neighbour pairs are
  compared (unchanged adjacent pairs were ordered and did not move), so
  the check is O(affected events); an order change falls back;
* audit-arc and nav-arc row tables — rebuilt through the *same* row
  builders compilation uses (:func:`~repro.pipeline.program
  .build_audit_arc` / :func:`~repro.pipeline.program.build_nav_arc`)
  and slice-assigned into the shared lists, so a patched row can never
  drift from what a cold compile would emit;
* every cached :class:`AdaptationProgram` composition — adapted
  descriptors are untouched by timing edits, so each environment's
  entry is re-stamped at the new revision, never re-planned;
* the navigation program — refreshed in place
  (:func:`~repro.pipeline.navprogram.recompile_into`), preserving the
  object identity live readers hold.

Because environment-specialized programs share the base program's
arrays by identity (see :meth:`PlaybackProgram.specialized`), the
timing writes above update *all* cached environments at once; the
shared ``patch_epoch`` counter then flushes every
:class:`~repro.pipeline.program.BatchPlayer`'s derived caches lazily.

Structural edits (node add/remove/move, channel changes) defeat
patching and *detect themselves*: the scheduler records no localized
region (``last_changed_paths is None``) and the patcher falls back to a
targeted recompile — one base lowering slice-assigned into the live
arrays, one adaptation re-plan per *cached* environment fingerprint,
one navigation recompile — classified per pyramid level by
:meth:`~repro.pipeline.program.ProgramCache.level_of`.  Entries of
other schedules (other documents on the same engine) are never touched,
which the per-edit counters on :class:`EditRecord` (and the cumulative
:class:`~repro.timing.incremental.EngineStats`) make checkable.

:class:`LiveEditor` is the authoring-side entry point: it owns the
incremental scheduler and the patcher, mirrors the editing API of
:mod:`repro.core.edit`, and accepts JSON edit specs (the CLI
``serve --edit-script`` / ``edit`` format).  Every path is pinned
bit-identical to a cold recompile of the edited document by
``tests/test_live_edit.py``.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from repro.core.document import CmifDocument
from repro.core.errors import (PathError, SchedulingConflict,
                               ValueError_)
from repro.core.paths import path_map, resolve_path
from repro.core.syncarc import (Anchor, ConditionalArc, Strictness,
                                SyncArc)
from repro.core.timebase import MediaTime
from repro.core.tree import iter_postorder, iter_preorder
from repro.pipeline.adaptation import adaptation_for
from repro.pipeline.navprogram import (NAVIGATION_TAG, NavigationProgram,
                                       recompile_into)
from repro.pipeline.program import (PlaybackProgram, ProgramCache,
                                    audit_row, build_audit_arc,
                                    build_nav_arc, compile_program,
                                    event_slot_map)
from repro.timing.constraints import begin_var, end_var
from repro.timing.incremental import IncrementalScheduler
from repro.timing.schedule import Schedule, ScheduleCache
from repro.timing.solver import RELAX_DROP_LAST
from repro.transport.environments import SystemEnvironment

#: :class:`EditRecord.mode` values.
PATCHED = "patched"
RECOMPILED = "recompiled"
NOOP = "noop"
CONFLICT = "conflict"


@dataclass
class EditRecord:
    """What one live edit cost, per pyramid level (``explain`` output).

    ``mode`` classifies the whole edit: ``patched`` (in-place array
    patch), ``recompiled`` (structural fallback — targeted per-level
    recompile), ``noop`` (no derived state existed or changed), or
    ``conflict`` (the edit left the document unschedulable).  The
    ``*_patched``/``*_recompiled`` pairs count cached entries per level,
    which is what proves invalidation precision: a retime against eight
    cached environments should read ``programs 9 patched / 0
    recompiled``, never the other way around.
    """

    op: str
    subject: str
    mode: str = NOOP
    events_touched: int = 0
    programs_patched: int = 0
    programs_recompiled: int = 0
    adaptations_patched: int = 0
    adaptations_recompiled: int = 0
    navigations_patched: int = 0
    navigations_recompiled: int = 0
    wall_seconds: float = 0.0

    def explain(self) -> str:
        return (f"edit {self.op} {self.subject or '.'}: {self.mode}, "
                f"{self.events_touched} event(s) touched, programs "
                f"{self.programs_patched}p/{self.programs_recompiled}r, "
                f"adaptations {self.adaptations_patched}p/"
                f"{self.adaptations_recompiled}r, navigation "
                f"{self.navigations_patched}p/"
                f"{self.navigations_recompiled}r "
                f"({self.wall_seconds * 1000:.2f}ms)")


def arc_from_spec(spec: dict) -> SyncArc:
    """Build a :class:`SyncArc` (or conditional) from a JSON edit spec."""
    max_delay = spec.get("max_delay_ms", 0.0)
    kwargs = dict(
        source=spec.get("source", ""),
        destination=spec.get("destination", ""),
        src_anchor=Anchor.from_name(spec.get("src_anchor", "begin")),
        dst_anchor=Anchor.from_name(spec.get("dst_anchor", "begin")),
        strictness=Strictness.from_name(spec.get("strictness", "may")),
        offset=MediaTime.ms(float(spec.get("offset_ms", 0.0))),
        min_delay=MediaTime.ms(float(spec.get("min_delay_ms", 0.0))),
        max_delay=(None if max_delay is None
                   else MediaTime.ms(float(max_delay))))
    condition = spec.get("condition")
    if condition is not None:
        return ConditionalArc(condition=str(condition), **kwargs)
    return SyncArc(**kwargs)


def compiled_arc_rows(schedule: Schedule) -> tuple[list, list]:
    """The (audit, nav) row tables of a schedule, as compilation emits.

    Shares the row builders (and the loop order) with
    :func:`~repro.pipeline.program.compile_program`; the patcher
    slice-assigns the result into the live shared lists, so an arc edit
    costs O(nodes + arcs) — no solve, no per-environment work.
    """
    compiled = schedule.compiled
    document = compiled.document
    paths = path_map(document.root)
    timebase = document.timebase
    event_slot = event_slot_map(schedule)
    audit = []
    for node in iter_postorder(document.root):
        for arc in node.arcs:
            if isinstance(arc, ConditionalArc):
                continue
            audit.append(build_audit_arc(node, arc, paths, timebase,
                                         compiled, event_slot))
    nav = []
    for node in iter_preorder(document.root):
        for arc in node.arcs:
            nav.append(build_nav_arc(node, arc, paths, compiled,
                                     event_slot))
    return audit, nav


class ProgramPatcher:
    """Lower one edit's schedule delta onto the cached program pyramid.

    Owns the fingerprint → :class:`SystemEnvironment` registry the
    structural fallback needs to re-plan adaptations for exactly the
    environments that are actually cached; a cached fingerprint with no
    registered environment is dropped (and lazily recompiled on its
    next probe) rather than guessed at.
    """

    def __init__(self, program_cache: ProgramCache) -> None:
        self.program_cache = program_cache
        self.environments: dict[tuple, SystemEnvironment] = {}

    def register_environment(self, environment: SystemEnvironment) -> None:
        self.environments[environment.fingerprint()] = environment

    # -- entry point -------------------------------------------------------

    def lower(self, old_schedule: Schedule, new_schedule: Schedule,
              changed_paths: set[str] | None, *, arcs_changed: bool,
              record: EditRecord) -> None:
        """Patch (or selectively recompile) everything cached for
        ``old_schedule`` and re-key it under ``new_schedule``.

        Must run before anything is published to the program cache for
        the new revision: :meth:`ProgramCache.take` is the only path on
        which a superseded-revision entry survives an edit (the cache
        otherwise evicts prior revisions on insert).
        """
        taken = self.program_cache.take(old_schedule)
        programs = {slot: value for slot, value in taken.items()
                    if isinstance(value, PlaybackProgram)}
        navigation = taken.get(("derived", NAVIGATION_TAG))
        if not isinstance(navigation, NavigationProgram):
            navigation = None
        if changed_paths is None:
            self._rebuild(new_schedule, programs, navigation, record)
            return
        if not self._patch(new_schedule, old_schedule, changed_paths,
                           arcs_changed, programs, navigation, record):
            # The edit reordered the canonical event sequence (or a
            # slot went missing): the flat arrays no longer mean what
            # they meant, so this edit pays the structural path.
            self._rebuild(new_schedule, programs, navigation, record)

    # -- the O(affected events) patch --------------------------------------

    def _patch(self, new_schedule: Schedule, old_schedule: Schedule,
               changed_paths: set[str], arcs_changed: bool,
               programs: dict, navigation, record: EditRecord) -> bool:
        times = new_schedule.times_ms
        touched = 0
        try:
            for group in self._array_groups(programs):
                written = self._patch_group(group, old_schedule,
                                            changed_paths, times)
                if written < 0:
                    return False
                touched = max(touched, written)
        except (KeyError, PathError):
            return False
        if arcs_changed and programs:
            audit, nav = compiled_arc_rows(new_schedule)
            for group in self._array_groups(programs):
                group.audit_arcs[:] = audit
                group._audit_rows[:] = [audit_row(arc) for arc in audit]
                group.nav_arcs[:] = nav
                # The compiled kernel views bake the audit-arc columns
                # in; timing-only patches keep them valid (begin/end
                # ride in per-run plans), arc edits do not.
                group._kernel_views.clear()
        record.mode = PATCHED if (touched or arcs_changed) else NOOP
        record.events_touched = touched
        self._rekey(new_schedule, programs, navigation, record,
                    patched=True)
        return True

    def _patch_group(self, group: PlaybackProgram,
                     old_schedule: Schedule, changed_paths: set[str],
                     times: dict) -> int:
        """Write the moved times into one shared-array generation.

        Returns the number of event slots written, or -1 when the edit
        broke the canonical order (fallback required).  Partial writes
        before a -1 are harmless: the fallback slice-assigns every
        array from a fresh lowering anyway.
        """
        slot_of = {path: index
                   for index, path in enumerate(group.node_paths)}
        begin, end = group.begin_ms, group.end_ms
        touched: list[int] = []
        for path in changed_paths:
            slot = slot_of.get(path)
            if slot is None:
                continue  # container anchor: no event of its own
            begin[slot] = times[begin_var(path)]
            end[slot] = times[end_var(path)]
            touched.append(slot)
        if not touched:
            return 0
        # Canonical-order guard, O(affected): an array stays sorted iff
        # every adjacent pair is ordered, and pairs not involving a
        # patched slot were ordered before and did not move.
        ids = [scheduled.event.event_id
               for scheduled in old_schedule.ordered_events()]
        last = group.n_events - 1
        for slot in touched:
            if slot > 0 and ((begin[slot - 1], end[slot - 1],
                              ids[slot - 1])
                             > (begin[slot], end[slot], ids[slot])):
                return -1
            if slot < last and ((begin[slot], end[slot], ids[slot])
                                > (begin[slot + 1], end[slot + 1],
                                   ids[slot + 1])):
                return -1
        return len(touched)

    # -- the structural fallback (targeted per-level recompile) ------------

    def _rebuild(self, new_schedule: Schedule, programs: dict,
                 navigation, record: EditRecord) -> None:
        record.mode = RECOMPILED
        if not programs and navigation is None:
            return  # nothing cached: later probes compile lazily
        fresh = compile_program(new_schedule) if programs else None
        if fresh is not None:
            record.events_touched = fresh.n_events
            record.programs_recompiled += 1
            for group in self._array_groups(programs):
                group.begin_ms[:] = fresh.begin_ms
                group.end_ms[:] = fresh.end_ms
                group.channel_index[:] = fresh.channel_index
                group.medium_index[:] = fresh.medium_index
                group.audit_arcs[:] = fresh.audit_arcs
                group._audit_rows[:] = fresh._audit_rows
                group.nav_arcs[:] = fresh.nav_arcs
                group._kernel_views.clear()
            for program in self._distinct(programs):
                program.n_events = fresh.n_events
                program.node_paths = fresh.node_paths
                program.channels = fresh.channels
                program.media = fresh.media
        self._rekey(new_schedule, programs, navigation, record,
                    patched=False)

    # -- shared re-keying / metadata refresh -------------------------------

    def _rekey(self, new_schedule: Schedule, programs: dict, navigation,
               record: EditRecord, *, patched: bool) -> None:
        revision = new_schedule.compiled.document.revision
        base = programs.get(None)
        for epoch in {id(program.patch_epoch): program.patch_epoch
                      for program in programs.values()}.values():
            epoch[0] += 1
        for program in self._distinct(programs):
            program.schedule = new_schedule
            program.revision = revision
        for slot, program in programs.items():
            if slot is None:
                self.program_cache.restore(new_schedule, None, program)
                record.programs_patched += 1 if patched else 0
                continue
            if patched:
                # Timing edits never touch descriptors: re-stamp the
                # composition at the new revision, keep the plan.
                if program.adaptation is not None \
                        and program.adaptation.revision != revision:
                    program.adaptation = dataclasses.replace(
                        program.adaptation, revision=revision)
                    record.adaptations_patched += 1
                self.program_cache.restore(new_schedule, slot, program)
                record.programs_patched += 1
                continue
            program = self._readapt(new_schedule, slot, program, base,
                                    record)
            if program is not None:
                self.program_cache.restore(new_schedule, slot, program)
        if navigation is not None:
            recompile_into(navigation, new_schedule)
            if patched:
                record.navigations_patched += 1
            else:
                record.navigations_recompiled += 1
            self.program_cache.restore(
                new_schedule, ("derived", NAVIGATION_TAG), navigation)

    def _readapt(self, new_schedule: Schedule, slot, program, base,
                 record: EditRecord):
        """Structural path: re-plan one cached environment composition.

        Returns the entry to restore under the fingerprint, or None to
        drop it (unregistered environment — recompiled lazily later).
        """
        environment = self.environments.get(slot)
        if environment is None:
            record.adaptations_recompiled += 1
            return None
        adaptation = adaptation_for(new_schedule, environment)
        record.adaptations_recompiled += 1
        if adaptation.identity:
            # Cold compilation caches the base program itself for
            # identity environments; match that structure.
            if base is not None:
                return base
            program.adaptation = None
            return program
        if program.adaptation is not None:
            program.adaptation = adaptation
            return program
        # The entry *was* the shared base (identity before the edit);
        # the edit introduced real filtering, so compose a clone.
        return program.specialized(adaptation)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _array_groups(programs: dict) -> list[PlaybackProgram]:
        """One representative per shared-array generation.

        Every environment-specialized clone shares its base's arrays by
        identity, so normally there is exactly one group; mixed
        generations (a base evicted and recompiled under live clones)
        each get their own writes.
        """
        groups: dict[int, PlaybackProgram] = {}
        for program in programs.values():
            groups.setdefault(id(program.begin_ms), program)
        return list(groups.values())

    @staticmethod
    def _distinct(programs: dict) -> list[PlaybackProgram]:
        distinct: dict[int, PlaybackProgram] = {}
        for program in programs.values():
            distinct.setdefault(id(program), program)
        return list(distinct.values())


class LiveEditor:
    """Author against a hot serving fleet: edits become program patches.

    Wraps one document's :class:`IncrementalScheduler` and a
    :class:`ProgramPatcher` over the serving caches; every editing
    method applies the edit, re-solves incrementally, lowers the delta
    onto all cached compiled programs, and returns an
    :class:`EditRecord`.  When the schedule cache already holds the
    document's schedule (the document is being served), the scheduler
    adopts that exact object so the cached program pyramid stays
    reachable across the editor's attach.
    """

    def __init__(self, document: CmifDocument, *,
                 schedule_cache: ScheduleCache | None = None,
                 program_cache: ProgramCache | None = None,
                 channel_serialization: bool = True,
                 relaxation_policy: str = RELAX_DROP_LAST) -> None:
        self.document = document
        existing = (schedule_cache.get(
            document, channel_serialization=channel_serialization,
            relaxation_policy=relaxation_policy)
            if schedule_cache is not None else None)
        self.scheduler = IncrementalScheduler(
            document, cache=schedule_cache,
            channel_serialization=channel_serialization,
            relaxation_policy=relaxation_policy)
        if existing is not None:
            self.scheduler.adopt_schedule(existing)
        self.patcher = (ProgramPatcher(program_cache)
                        if program_cache is not None else None)
        self.records: list[EditRecord] = []

    @property
    def schedule(self) -> Schedule:
        return self.scheduler.schedule

    @property
    def stats(self):
        return self.scheduler.stats

    def register_environment(self, environment: SystemEnvironment) -> None:
        if self.patcher is not None:
            self.patcher.register_environment(environment)

    # -- the editing API (mirrors repro.core.edit) ------------------------

    def retime(self, leaf_path: str, duration) -> EditRecord:
        return self._edited(
            "retime", leaf_path,
            lambda: self.scheduler.retime(leaf_path, duration),
            arcs_changed=False)

    def add_arc(self, owner_path: str, arc: SyncArc) -> EditRecord:
        return self._edited(
            "add_arc", owner_path,
            lambda: self.scheduler.add_arc(owner_path, arc),
            arcs_changed=True)

    def remove_arc(self, owner_path: str, index: int) -> EditRecord:
        return self._edited(
            "remove_arc", f"{owner_path}[{index}]",
            lambda: self.scheduler.remove_arc(owner_path, index),
            arcs_changed=True)

    def reorder(self, parent_path: str, child_name: str,
                new_index: int) -> EditRecord:
        return self._edited(
            "reorder", f"{parent_path}/{child_name}",
            lambda: self.scheduler.reorder(parent_path, child_name,
                                           new_index),
            arcs_changed=True)

    def splice(self, node_path: str, new_parent_path: str,
               index: int | None = None) -> EditRecord:
        return self._edited(
            "splice", node_path,
            lambda: self.scheduler.splice(node_path, new_parent_path,
                                          index),
            arcs_changed=True)

    def duplicate(self, node_path: str, new_name: str) -> EditRecord:
        return self._edited(
            "duplicate", node_path,
            lambda: self.scheduler.duplicate(node_path, new_name),
            arcs_changed=True)

    def remove(self, node_path: str) -> EditRecord:
        return self._edited(
            "remove", node_path,
            lambda: self.scheduler.remove(node_path),
            arcs_changed=True)

    # -- JSON edit specs (the --edit-script format) -----------------------

    def apply(self, spec: dict) -> EditRecord:
        """Dispatch one JSON edit spec: ``{"op": ..., ...}``.

        Ops: ``retime`` (path, duration_ms), ``add_arc`` (owner +
        :func:`arc_from_spec` fields; a ``condition`` makes it
        conditional), ``remove_arc`` (owner, index), ``reorder``
        (parent, child, index), ``splice`` (path, parent, index?),
        ``duplicate`` (path, name), ``remove`` (path).
        """
        op = spec.get("op")
        if op == "retime":
            return self.retime(spec["path"], float(spec["duration_ms"]))
        if op == "add_arc":
            return self.add_arc(spec["owner"], arc_from_spec(spec))
        if op == "remove_arc":
            return self.remove_arc(spec["owner"], int(spec["index"]))
        if op == "reorder":
            return self.reorder(spec["parent"], spec["child"],
                                int(spec["index"]))
        if op == "splice":
            index = spec.get("index")
            return self.splice(spec["path"], spec["parent"],
                               None if index is None else int(index))
        if op == "duplicate":
            return self.duplicate(spec["path"], spec["name"])
        if op == "remove":
            return self.remove(spec["path"])
        raise ValueError_(f"unknown edit op {op!r}; expected retime, "
                          f"add_arc, remove_arc, reorder, splice, "
                          f"duplicate or remove")

    # -- internals ---------------------------------------------------------

    def _edited(self, op: str, subject: str, operation, *,
                arcs_changed: bool) -> EditRecord:
        try:
            old_schedule: Schedule | None = self.scheduler.schedule
        except SchedulingConflict:
            old_schedule = None
        start = time.perf_counter()
        record = EditRecord(op=op, subject=subject)
        try:
            operation()
        except (SchedulingConflict, PathError):
            # The edit stays applied (tools signal problems, they do
            # not revert work); the cached pyramid keeps serving the
            # last feasible revision until a later edit restores one.
            # PathError covers edits that orphan an arc endpoint — a
            # cold compile of the edited document raises it too.
            record.mode = CONFLICT
            record.wall_seconds = time.perf_counter() - start
            self.records.append(record)
            self.scheduler.stats.robustness.degraded_edits += 1
            raise
        changed = self.scheduler.last_changed_paths
        new_schedule = self.scheduler.schedule
        if self.patcher is not None and old_schedule is not None:
            self.patcher.lower(old_schedule, new_schedule, changed,
                               arcs_changed=arcs_changed, record=record)
        else:
            record.mode = (RECOMPILED if changed is None
                           else PATCHED if (changed or arcs_changed)
                           else NOOP)
        record.wall_seconds = time.perf_counter() - start
        self.records.append(record)
        self._accumulate(record)
        return record

    def _accumulate(self, record: EditRecord) -> None:
        stats = self.scheduler.stats
        stats.events_touched += record.events_touched
        stats.programs_patched += record.programs_patched
        stats.programs_recompiled += record.programs_recompiled
        stats.adaptations_patched += record.adaptations_patched
        stats.adaptations_recompiled += record.adaptations_recompiled
        stats.navigations_patched += record.navigations_patched
        stats.navigations_recompiled += record.navigations_recompiled


__all__ = ["CONFLICT", "EditRecord", "LiveEditor", "NOOP", "PATCHED",
           "ProgramPatcher", "RECOMPILED", "arc_from_spec",
           "compiled_arc_rows"]
