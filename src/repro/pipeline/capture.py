"""Pipeline stage 1: media block capture tools (paper section 2).

"A set of tools that will allow the user to iteratively capture (and
edit) the atomic pieces of information that will be included in a
composite document. ... our focus is on providing descriptive tools that
allow higher-level processing of various bits of collected information."

Exactly as the paper prescribes, these tools' real output is the
*descriptor*: each ``capture_*`` method synthesizes a payload (standing
in for vendor capture hardware, per DESIGN.md) and compiles the
attribute record downstream tools schedule, search and filter on.  A
:class:`CaptureSession` accumulates captures into a
:class:`~repro.store.datastore.DataStore` and hands out the ``file``
references documents use.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.descriptors import DataBlock, DataDescriptor
from repro.core.errors import MediaError
from repro.core.timebase import TimeBase
from repro.media.audio import make_audio_block
from repro.media.image import make_image_block
from repro.media.text import make_text_block
from repro.media.video import make_video_block
from repro.store.datastore import DataStore


@dataclass
class Captured:
    """One captured media block: its store reference plus objects."""

    file_id: str
    block: DataBlock
    descriptor: DataDescriptor


@dataclass
class CaptureSession:
    """An iterative capture session filling a data store.

    ``seed`` drives every synthetic generator deterministically, so a
    corpus (like the evening news) is reproducible bit-for-bit; each
    capture perturbs the seed so sibling blocks differ.
    """

    store: DataStore = field(default_factory=DataStore)
    seed: int = 0
    timebase: TimeBase = field(default_factory=TimeBase)
    _count: int = 0

    def _next_seed(self) -> int:
        self._count += 1
        return self.seed * 100_003 + self._count

    def _register(self, file_id: str, block: DataBlock,
                  descriptor: DataDescriptor) -> Captured:
        if file_id in self.store:
            raise MediaError(f"capture id {file_id!r} already used in "
                             f"this session")
        self.store.register(descriptor, block)
        return Captured(file_id=file_id, block=block, descriptor=descriptor)

    def capture_text(self, file_id: str, *, text: str | None = None,
                     sentences: int = 2, language: str = "en",
                     keywords: tuple[str, ...] = ()) -> Captured:
        """Capture a text block (captions, labels, articles)."""
        block, descriptor = make_text_block(
            file_id, seed=self._next_seed(), sentences=sentences,
            language=language, timebase=self.timebase,
            keywords=keywords, text=text)
        descriptor = _rename(descriptor, file_id)
        return self._register(file_id, block, descriptor)

    def capture_audio(self, file_id: str, duration_ms: float, *,
                      sample_rate: float | None = None,
                      keywords: tuple[str, ...] = ()) -> Captured:
        """Capture a sound stream of the given duration."""
        block, descriptor = make_audio_block(
            file_id, duration_ms,
            sample_rate=sample_rate or self.timebase.sample_rate,
            seed=self._next_seed(), keywords=keywords)
        descriptor = _rename(descriptor, file_id)
        return self._register(file_id, block, descriptor)

    def capture_video(self, file_id: str, duration_ms: float, *,
                      frame_rate: float | None = None, width: int = 32,
                      height: int = 24,
                      keywords: tuple[str, ...] = ()) -> Captured:
        """Capture a video stream of the given duration."""
        block, descriptor = make_video_block(
            file_id, duration_ms,
            frame_rate=frame_rate or self.timebase.frame_rate,
            width=width, height=height, seed=self._next_seed(),
            keywords=keywords)
        descriptor = _rename(descriptor, file_id)
        return self._register(file_id, block, descriptor)

    def capture_image(self, file_id: str, *, width: int = 320,
                      height: int = 240, display_ms: float = 8000.0,
                      keywords: tuple[str, ...] = ()) -> Captured:
        """Capture a still image (graphics, illustrations, maps)."""
        block, descriptor = make_image_block(
            file_id, width, height, seed=self._next_seed(),
            display_ms=display_ms, keywords=keywords)
        descriptor = _rename(descriptor, file_id)
        return self._register(file_id, block, descriptor)

    @property
    def captured_count(self) -> int:
        """Number of blocks captured in this session."""
        return self._count


def _rename(descriptor: DataDescriptor, file_id: str) -> DataDescriptor:
    """Key the descriptor by the capture's file id.

    Documents reference descriptors by their ``file`` attribute; using
    the capture id as the descriptor id keeps the reference chain
    (node -> file -> descriptor -> block) one-to-one and obvious.
    """
    return DataDescriptor(
        descriptor_id=file_id,
        medium=descriptor.medium,
        block_id=descriptor.block_id,
        attributes=dict(descriptor.attributes),
    )
