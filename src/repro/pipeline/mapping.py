"""Pipeline stage 2: the document structure mapping tool (paper section 2).

"This tool allows the user to express relationships among individual
media blocks.  The relationships are primarily temporal and spatial. ...
The document structure mapping tool produces a document in the CMIF
format."

:class:`StructureMapper` is a thin authoring layer above
:class:`~repro.core.builder.DocumentBuilder` that works directly with
:class:`~repro.pipeline.capture.Captured` media: it wires ``file``
references, registers descriptors, and provides the common composite
shapes (a parallel *scene* of one block per channel; a sequential
*sequence* of blocks on one channel) that section 4's news template is
made of.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.builder import DocumentBuilder
from repro.core.document import CmifDocument
from repro.core.nodes import ExtNode
from repro.pipeline.capture import Captured
from repro.store.datastore import DataStore


@dataclass
class StructureMapper:
    """Maps captured media blocks into a CMIF document structure."""

    builder: DocumentBuilder
    store: DataStore

    @classmethod
    def create(cls, name: str, store: DataStore, *,
               root_kind: str = "seq") -> "StructureMapper":
        """Start a new mapping session over an existing capture store."""
        return cls(builder=DocumentBuilder(name, root_kind=root_kind),
                   store=store)

    def channel(self, name: str, medium: str, **extra) -> "StructureMapper":
        """Declare a channel (delegates to the builder)."""
        self.builder.channel(name, medium, **extra)
        return self

    def place(self, captured: Captured, channel: str,
              name: str | None = None, **attributes) -> ExtNode:
        """Place one captured block as an external node.

        Registers the block's descriptor with the document so scheduling
        can resolve durations without consulting the store.
        """
        self.builder.descriptor(captured.file_id, captured.descriptor)
        return self.builder.ext(name, file=captured.file_id,
                                channel=channel, **attributes)

    def scene(self, name: str,
              placements: dict[str, Captured]) -> "StructureMapper":
        """A parallel node with one captured block per channel.

        ``placements`` maps channel names to captures — the shape of one
        news story moment (video + audio + graphic + caption + label all
        at once).
        """
        with self.builder.par(name):
            for channel, captured in placements.items():
                self.place(captured, channel, name=f"{name}-{channel}")
        return self

    def sequence(self, name: str, channel: str,
                 captures: list[Captured]) -> "StructureMapper":
        """A sequential node of blocks all on one channel."""
        with self.builder.seq(name):
            for index, captured in enumerate(captures):
                self.place(captured, channel, name=f"{name}-{index}")
        return self

    def finish(self, validate: bool = True) -> CmifDocument:
        """Produce the CMIF document and attach the store's resolver."""
        document = self.builder.build(validate=validate)
        document.attach_resolver(self.store.resolver())
        return document
