#!/usr/bin/env python3
"""Quickstart: author, validate, schedule and view a CMIF document.

Builds a 30-second two-channel document (a video clip with captions),
prints the human-readable CMIF text form, the solved timeline, and the
figure-5 tree views.  Run it with::

    python examples/quickstart.py
"""

from repro import DocumentBuilder, MediaTime, schedule_document
from repro.format import write_document
from repro.pipeline import render_timeline, render_tree, render_summary


def build_document():
    """A minimal dynamic document: one video stream plus captions."""
    builder = DocumentBuilder("quickstart")
    builder.channel("video", "video")
    builder.channel("caption", "text")
    # A style keeps caption formatting in one place (paper figure 7).
    builder.style("caption-style", channel="caption",
                  **{"t-formatting": {"font": "helvetica", "size": 14}})

    with builder.seq("film"):
        with builder.par("scene-1"):
            builder.imm("clip-1", channel="video", medium="video",
                        data="<opening shot>",
                        duration=MediaTime.seconds(8))
            with builder.seq("captions-1", style=("caption-style",)):
                builder.imm("c1", data="A quiet morning in Amsterdam.")
                builder.imm("c2", data="Nothing ever happens here...")
        with builder.par("scene-2"):
            clip2 = builder.imm("clip-2", channel="video", medium="video",
                                data="<chase scene>",
                                duration=MediaTime.seconds(12))
            cap = builder.imm("c3", style=("caption-style",),
                              data="...until today.")
    document = builder.build()

    # An explicit synchronization arc (paper section 5.3.2): the last
    # caption must appear within [0ms, 500ms] of the chase scene's start.
    builder.arc(cap, source="../clip-2", destination=".",
                min_delay=0.0, max_delay=MediaTime.ms(500))
    return document


def main() -> None:
    document = build_document()

    print("=" * 70)
    print("The transportable text form (paper: 'human-readable'):")
    print("=" * 70)
    print(write_document(document))

    schedule = schedule_document(document.compile())

    print("=" * 70)
    print("Document summary:")
    print("=" * 70)
    print(render_summary(document, schedule))
    print()

    print("=" * 70)
    print("The document tree (figure 5a):")
    print("=" * 70)
    print(render_tree(document))
    print()

    print("=" * 70)
    print("The solved timeline (figure 3): channels x time")
    print("=" * 70)
    print(render_timeline(schedule, slot_ms=2000.0))
    print()

    print("Scheduled events:")
    for event in schedule.events:
        print(f"  {event}")


if __name__ == "__main__":
    main()
