#!/usr/bin/env python3
"""The Evening News: the paper's running example, end to end.

Reproduces section 4 and figure 10: builds the full broadcast through
the capture and structure-mapping pipeline stages, schedules it, renders
the figure-4a composite screen and the figure-10 channel timeline, then
plays it on a workstation-class device and audits every synchronization
arc.  Run it with::

    python examples/evening_news.py
"""

from repro.corpus import make_news_document
from repro.pipeline import (Player, PresentationMapper, render_arc_table,
                            render_screen, render_summary, render_timeline)
from repro.timing import schedule_document
from repro.transport import WORKSTATION


def main() -> None:
    corpus = make_news_document(stories=2)
    document = corpus.document

    schedule = schedule_document(document.compile())
    print(render_summary(document, schedule))
    print()

    # Stage 3: allocate the virtual screen of figure 4a.
    presentation = PresentationMapper(speaker_count=2).map_document(
        document)
    print(presentation.describe())
    print()

    # The paintings story starts after the opening and two stories;
    # find it and render the screen in the middle of the report, when
    # video + graphic + caption + label are all live.
    story_begin = schedule.node_begin_ms("/story-paintings")
    mid_story = story_begin + 15_000.0
    print(f"figure 4a: the composite screen at t={mid_story / 1000.0:.0f}s")
    print(render_screen(schedule, presentation, at_ms=mid_story))
    print()

    print("figure 10: the paintings story, channels x time")
    fragment_events = [event for event in schedule.events
                       if event.event.node_path.startswith(
                           "/story-paintings")]
    first = min(event.begin_ms for event in fragment_events)
    shifted = schedule.shifted(-first)
    print(render_timeline(shifted, slot_ms=2000.0, column_width=16))
    print()

    print("figure 9: the explicit synchronization arcs")
    print(render_arc_table(schedule))
    print()

    # Stage 5: play on the workstation device model and audit the arcs.
    report = Player(WORKSTATION, seed=42).play(schedule)
    print(report.summary())
    print()
    print("per-channel worst start skew (device latency + jitter):")
    for channel, skew in sorted(report.skew_by_channel().items()):
        print(f"  {channel:<10} {skew:6.1f}ms")
    print()

    # Reader controls: freeze-frame and fast-forward (section 5.3.3).
    frozen = Player(WORKSTATION, seed=42).play(
        schedule, freeze_at_ms=mid_story, freeze_duration_ms=5000.0)
    print(f"after a 5s freeze-frame at t={mid_story / 1000.0:.0f}s: "
          f"{len(frozen.must_violations)} must violations "
          f"(arcs travel with their sources)")

    # Seek into the gap between the second caption's end and the
    # second graphic's start: the offset arc's source never executes in
    # the resumed presentation, so the arc is invalid (section 5.3.3).
    seek_to = story_begin + 12_500.0
    navigated = Player(WORKSTATION, seed=42).play(schedule,
                                                  seek_to_ms=seek_to)
    print(f"after fast-forwarding to t={seek_to / 1000.0:.0f}s: "
          f"{len(navigated.navigation_conflicts)} arcs invalidated "
          f"(conflict class 3)")
    for conflict in navigated.navigation_conflicts:
        print(f"  ~ {conflict}")


if __name__ == "__main__":
    main()
