#!/usr/bin/env python3
"""Multilingual captions: the paper's local/global presentation split.

Section 5.3.4: the caption channel "is not synchronized at all with the
audio; this allows one story to be presented for local consumption and
another for global presentation."  This example builds a broadcast with
Dutch audio and *two* caption channels (English and French), both
start-synchronized with the video and neither with the audio.  It then
shows attribute-only retrieval (section 6): finding every French caption
in the archive without touching a single payload byte.  Run it with::

    python examples/multilingual_broadcast.py
"""

from repro.core import DocumentBuilder, MediaTime
from repro.media.text import translate_stub
from repro.pipeline import CaptureSession, render_timeline
from repro.store import DataStore, attr_eq, medium_is, run
from repro.timing import schedule_document


CAPTIONS_NL = (
    "Gestolen van Gogh's, waarde van tien miljoen.",
    "De dieven kwamen door de westvleugel binnen.",
    "Het museum belooft betere beveiliging.",
)


def build_broadcast():
    store = DataStore("multilingual-archive")
    session = CaptureSession(store=store, seed=2026)
    builder = DocumentBuilder("multilingual-news")
    builder.channel("video", "video")
    builder.channel("audio", "audio")
    builder.channel("caption-en", "text")
    builder.channel("caption-fr", "text")

    voice = session.capture_audio("story/voice", 24_000.0,
                                  keywords=("news", "dutch"))
    report = session.capture_video("story/report", 24_000.0,
                                   keywords=("news",))

    with builder.par("story"):
        with builder.seq("video-track", channel="video"):
            builder.descriptor(report.file_id, report.descriptor)
            builder.ext("report", file=report.file_id)
        with builder.seq("audio-track", channel="audio"):
            builder.descriptor(voice.file_id, voice.descriptor)
            builder.ext("voice", file=voice.file_id)
        for language in ("en", "fr"):
            with builder.seq(f"captions-{language}",
                             channel=f"caption-{language}"):
                for index, dutch in enumerate(CAPTIONS_NL):
                    captured = session.capture_text(
                        f"story/caption-{language}-{index}",
                        text=translate_stub(dutch, language),
                        language=language,
                        keywords=("caption", language))
                    builder.descriptor(captured.file_id,
                                       captured.descriptor)
                    builder.ext(f"c{index}", file=captured.file_id,
                                duration=MediaTime.seconds(8))

    document = builder.build()
    story = document.root.child_named("story")
    # Both caption tracks sync with the video, not the audio — swap the
    # caption channel and the spoken language stays untouched.
    for language in ("en", "fr"):
        builder.arc(story.child_named(f"captions-{language}"),
                    source="../video-track", destination=".",
                    min_delay=MediaTime.ms(-50),
                    max_delay=MediaTime.ms(250))
    document.attach_resolver(store.resolver())
    return document, store


def main() -> None:
    document, store = build_broadcast()
    schedule = schedule_document(document.compile())

    print("both caption languages, synchronized with the video track:")
    print(render_timeline(schedule, slot_ms=4000.0, column_width=14))
    print()

    # A receiving system presents only its local language by dropping
    # the other channel — a presentation decision, not a document edit.
    for language in ("en", "fr"):
        lane = schedule.by_channel()[f"caption-{language}"]
        print(f"caption-{language}: {len(lane)} blocks, "
              f"first at {lane[0].begin_ms:g}ms")
    print()

    # Section 6: attribute-only retrieval from the archive.
    store.stats.reset()
    french = run(store, medium_is("text") & attr_eq("language", "fr"))
    print(f"attribute query found {len(french)} French captions with "
          f"{store.stats.attribute_reads} attribute reads and "
          f"{store.stats.payload_reads} payload reads:")
    for descriptor in french:
        print(f"  {descriptor.descriptor_id} "
              f"({descriptor.get('characters')} chars)")


if __name__ == "__main__":
    main()
