#!/usr/bin/env python3
"""Hyper-navigation: conditional arcs as a chapter menu (paper §3.2).

The paper leaves hyper access as future work, sketching "conditional
synchronization arcs that point to events on separate channels".  This
example builds a documentary with a menu scene carrying three
conditional arcs, then simulates a reader session: browse the menu,
follow a link, rewind, follow another — and shows the class-3 conflict
analysis firing when a jump skips over an arc's source.  Run it with::

    python examples/hypermedia_menu.py
"""

from repro.core import DocumentBuilder, MediaTime
from repro.core.syncarc import ConditionalArc
from repro.pipeline.navigation import NavigationSession
from repro.pipeline.viewer import render_timeline
from repro.timing import schedule_document


def build_documentary():
    builder = DocumentBuilder("documentary")
    builder.channel("video", "video")
    builder.channel("caption", "text")
    with builder.seq("film"):
        builder.imm("titles", channel="video", medium="video",
                    data="<titles>", duration=MediaTime.seconds(4))
        menu = builder.imm("menu", channel="video", medium="video",
                           data="<chapter menu>",
                           duration=MediaTime.seconds(6))
        with builder.par("ch-making"):
            builder.imm("making-video", channel="video", medium="video",
                        data="<making of>",
                        duration=MediaTime.seconds(20))
            builder.imm("making-cap", channel="caption",
                        data="Chapter 1: how the paintings were made.")
        with builder.par("ch-theft"):
            theft = builder.imm("theft-video", channel="video",
                                medium="video", data="<the theft>",
                                duration=MediaTime.seconds(25))
            builder.imm("theft-cap", channel="caption",
                        data="Chapter 2: the night of the theft.")
        with builder.par("ch-recovery"):
            recovery = builder.imm("recovery-video", channel="video",
                                   medium="video", data="<recovery>",
                                   duration=MediaTime.seconds(15))
            cap = builder.imm("recovery-cap", channel="caption",
                              data="Chapter 3: ten years later.")
    document = builder.build()
    # A relative arc inside the linear structure: the recovery caption
    # may not appear until the theft chapter's video has ended.
    builder.arc(cap, source="../../ch-theft/theft-video",
                destination=".", src_anchor="end", max_delay=None)
    # The menu's conditional arcs: pure runtime links, no effect on the
    # static schedule.
    for condition, target in (("watch-making", "../ch-making"),
                              ("watch-theft", "../ch-theft"),
                              ("watch-recovery", "../ch-recovery")):
        menu.add_arc(ConditionalArc(".", target, condition=condition))
    return document


def main() -> None:
    document = build_documentary()
    schedule = schedule_document(document.compile())

    print("the static (linear) schedule — conditional arcs add nothing:")
    print(render_timeline(schedule, slot_ms=5000.0, column_width=16))
    print()

    session = NavigationSession(schedule)
    print(f"at t=0 the menu is not on screen; links: "
          f"{session.conditions_available()}")
    session.advance_to(5000.0)
    print(f"at t=5s the menu is showing; links: "
          f"{session.conditions_available()}")
    print()

    jump = session.follow("watch-theft")
    print(f"reader picks 'watch-theft': jumped from "
          f"{jump.from_ms / 1000.0:g}s to {jump.to_ms / 1000.0:g}s")
    print(f"  on screen now: {session.on_screen()}")
    if jump.invalidated:
        for report in jump.invalidated:
            print(f"  ~ {report}")
    print()

    session.rewind()
    session.advance_to(5000.0)
    jump = session.follow("watch-recovery")
    print(f"reader rewinds and picks 'watch-recovery': jumped to "
          f"{jump.to_ms / 1000.0:g}s")
    print(f"  on screen now: {session.on_screen()}")
    print(f"  invalidated arcs (the theft chapter never played, so the "
          f"caption's hold arc is void):")
    for report in jump.invalidated:
        print(f"  ~ {report}")
    print()
    print(f"session history: "
          f"{[jump.condition for jump in session.history]}")


if __name__ == "__main__":
    main()
