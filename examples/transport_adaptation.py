#!/usr/bin/env python3
"""Transporting one document across three target systems.

The paper's core claim: a CMIF document is authored once and each target
environment decides — from the structure, never the data — whether and
how it can present it.  This example authors the news broadcast, packs
it, unpacks it on three environments (a 1991 workstation, a modest
personal system, a silent terminal), negotiates capabilities, derives
each one's constraint-filter plan, and plays the document on each device
model to measure how well the must/may windows hold.  Run it with::

    python examples/transport_adaptation.py
"""

from repro.corpus import make_news_document
from repro.pipeline import ConstraintFilter, Player
from repro.timing import schedule_document
from repro.transport import (PERSONAL_SYSTEM, SILENT_TERMINAL,
                             WORKSTATION, negotiate, pack, unpack)


def main() -> None:
    # -- author once --------------------------------------------------------
    corpus = make_news_document(stories=1)
    package = pack(corpus.document, corpus.store)
    print(f"authored and packed: {len(package)} bytes of structure + "
          f"descriptors (no payloads)\n")

    for environment in (WORKSTATION, PERSONAL_SYSTEM, SILENT_TERMINAL):
        print("=" * 70)
        print(f"receiving on {environment.name}")
        print("=" * 70)

        # -- receive: same bytes everywhere ---------------------------------
        received = unpack(package)
        document = received.document

        # -- negotiate from the structure alone ------------------------------
        verdict = negotiate(document, environment)
        print(verdict.summary())
        print()

        if not verdict.ok:
            print("the environment declines the document — exactly the "
                  "determination the paper says CMIF enables.\n")
            continue

        # -- constraint filtering (stage 4) -----------------------------------
        compiled = document.compile()
        plan = ConstraintFilter(environment).plan(compiled)
        print(plan.describe())
        print()

        # -- schedule and play on this device model ----------------------------
        schedule = schedule_document(compiled)
        report = Player(environment, seed=7).play(schedule)
        print(report.summary())

        # Pre-fetching (section 5.3.1's pre-scheduling note) rescues a
        # slow device: dispatch events early so they start on time.
        if report.must_violations:
            lead = max(environment.latency_for(medium)
                       for medium in environment.supported_media)
            rescued = Player(environment, seed=7,
                             prefetch_lead_ms=lead).play(schedule)
            print(f"with {lead:g}ms prefetch lead: "
                  f"{len(rescued.must_violations)} must violations")
        print()


if __name__ == "__main__":
    main()
